package remote

import (
	"sync"
	"time"

	"github.com/scriptabs/goscript/internal/metrics"
)

// breakerTransitions counts every breaker state change process-wide; a
// climbing rate means some host is flapping between open and closed.
var breakerTransitions = metrics.Get(metrics.BreakerTransitions)

// BreakerConfig configures the Enroller's per-host circuit breaker.
type BreakerConfig struct {
	// FailureThreshold is how many consecutive host-health failures (dial
	// failures, lost connections, overload or drain rejections) open the
	// circuit. 0 means the default of 5; a negative value disables the
	// breaker for every host.
	FailureThreshold int
	// Cooldown is how long an open circuit rejects attempts before letting
	// one probe enrollment through (half-open). 0 means the default of
	// 500ms.
	Cooldown time.Duration
}

// DefaultFailureThreshold and DefaultBreakerCooldown are the breaker
// defaults when the corresponding BreakerConfig field is zero.
const (
	DefaultFailureThreshold = 5
	DefaultBreakerCooldown  = 500 * time.Millisecond
)

// BreakerState is a circuit breaker's position.
type BreakerState int

// Breaker states: closed (attempts flow), open (attempts rejected until the
// cooldown elapses), half-open (exactly one probe in flight).
const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

// String returns the conventional state name.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "breaker(?)"
	}
}

// breaker is one host's circuit breaker: closed → (threshold consecutive
// failures) → open → (cooldown) → half-open, where a single probe
// enrollment decides between closed (success) and open again (failure).
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu       sync.Mutex
	state    BreakerState
	failures int
	openedAt time.Time
}

func (b *breaker) disabled() bool { return b.threshold <= 0 }

// allow reports whether an attempt against the host may proceed at `now`.
// An open breaker whose cooldown has elapsed transitions to half-open and
// admits exactly this attempt as the probe; until the probe resolves
// (onSuccess, onFailure, or onNeutral) every other attempt is rejected.
func (b *breaker) allow(now time.Time) bool {
	if b.disabled() {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if now.Sub(b.openedAt) >= b.cooldown {
			b.state = BreakerHalfOpen
			breakerTransitions.Inc()
			return true
		}
		return false
	default: // BreakerHalfOpen: the probe is still in flight
		return false
	}
}

// onSuccess records contact with a healthy host: the circuit closes and the
// failure count resets. Any completed conversation counts — an enrollment
// that surfaces an *AbortError or *RoleError still proves the host up.
func (b *breaker) onSuccess() {
	if b.disabled() {
		return
	}
	b.mu.Lock()
	if b.state != BreakerClosed {
		breakerTransitions.Inc()
	}
	b.state = BreakerClosed
	b.failures = 0
	b.mu.Unlock()
}

// onFailure records a host-health failure: a failed half-open probe
// re-opens the circuit for a fresh cooldown; in the closed state the
// consecutive-failure count advances and opens the circuit at the
// threshold.
func (b *breaker) onFailure(now time.Time) {
	if b.disabled() {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		b.state = BreakerOpen
		b.openedAt = now
		breakerTransitions.Inc()
	case BreakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.state = BreakerOpen
			b.openedAt = now
			breakerTransitions.Inc()
		}
	default: // already open (a straggling attempt admitted before it opened)
	}
}

// onNeutral resolves an attempt that proved nothing about the host (the
// enroller's own context ended first). A half-open probe falls back to
// open with its original timestamp, so the next attempt may probe again at
// once.
func (b *breaker) onNeutral() {
	if b.disabled() {
		return
	}
	b.mu.Lock()
	if b.state == BreakerHalfOpen {
		b.state = BreakerOpen
		breakerTransitions.Inc()
	}
	b.mu.Unlock()
}

// snapshot returns the state and consecutive-failure count.
func (b *breaker) snapshot() (BreakerState, int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.failures
}
