package remote_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/scriptabs/goscript/internal/core"
	"github.com/scriptabs/goscript/internal/ids"
	"github.com/scriptabs/goscript/internal/patterns"
	"github.com/scriptabs/goscript/internal/remote"
	"github.com/scriptabs/goscript/internal/trace"
)

// testTracePropagation drives one star-broadcast performance with a sampling
// enroller against a tracing host and asserts that every party — host
// included — observed the same trace ID. The client mints an ID per Enroll
// call, the host adopts one for the performance and echoes it in OFFER-ACK,
// so all results and all recorded events must converge on a single ID.
func testTracePropagation(t *testing.T, hostCfg remote.HostConfig) {
	t.Helper()
	hostLog := &trace.Log{}
	in := core.NewInstance(patterns.StarBroadcast(2), core.WithTracer(hostLog))
	defer in.Close()
	_, addr := startHost(t, in, hostCfg)

	clientLog := &trace.Log{}
	enr := remote.NewEnroller(addr, remote.EnrollerConfig{
		Script:  "star_broadcast",
		Sampler: trace.AlwaysSample(99),
		Tracer:  clientLog,
	})
	defer enr.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	var mu sync.Mutex
	var gotIDs []trace.TraceID
	var wg sync.WaitGroup
	for i := 1; i <= 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := enr.Enroll(ctx, core.Enrollment{
				PID:  ids.PID(fmt.Sprintf("listener-%d", i)),
				Role: ids.Member(patterns.RoleRecipient, i),
				Body: recipientBody(i),
			})
			if err != nil {
				t.Errorf("listener-%d: %v", i, err)
				return
			}
			mu.Lock()
			gotIDs = append(gotIDs, res.TraceID)
			mu.Unlock()
		}(i)
	}
	res, err := enr.Enroll(ctx, core.Enrollment{
		PID:  "announcer",
		Role: ids.Role(patterns.RoleSender),
		Args: []any{"ping"},
		Body: senderBody(2),
	})
	if err != nil {
		t.Fatalf("announcer: %v", err)
	}
	wg.Wait()
	gotIDs = append(gotIDs, res.TraceID)

	id := gotIDs[0]
	if id == 0 {
		t.Fatalf("sampled enrollment returned zero trace ID")
	}
	for _, got := range gotIDs {
		if got != id {
			t.Fatalf("trace IDs diverge across parties: %v", gotIDs)
		}
	}

	// The host recorded the performance under the same ID the clients saw.
	if _, ok := hostLog.First(func(e trace.Event) bool {
		return e.Kind == trace.KindPerfStart && e.TraceID == id
	}); !ok {
		t.Errorf("host log has no KindPerfStart with trace %s:\n%s", id, hostLog.Timeline())
	}
	// Every performance-scoped host event carries the ID. KindEnroll fires
	// at offer time, before a performance (and its sampling decision) exists,
	// so those stay unstamped.
	for _, e := range hostLog.Events() {
		if e.Kind == trace.KindEnroll {
			continue
		}
		if e.TraceID != id {
			t.Errorf("host event %v carries trace %s, want %s", e.Kind, e.TraceID, id)
		}
	}

	// The client recorded its side — start/finish plus the ops — under the
	// same ID.
	for _, kind := range []trace.Kind{trace.KindStart, trace.KindFinish, trace.KindSend, trace.KindRecv} {
		kind := kind
		if _, ok := clientLog.First(func(e trace.Event) bool {
			return e.Kind == kind && e.TraceID == id
		}); !ok {
			t.Errorf("client log has no %v with trace %s:\n%s", kind, id, clientLog.Timeline())
		}
	}
}

func TestTracePropagationV2(t *testing.T) {
	testTracePropagation(t, remote.HostConfig{})
}

func TestTracePropagationV1(t *testing.T) {
	testTracePropagation(t, remote.HostConfig{MaxProtocolVersion: 1})
}

// TestUnsampledEnrollStaysUntraced pins the negative path: with samplers
// that never fire on either side, no trace IDs cross the wire and neither
// side records anything.
func TestUnsampledEnrollStaysUntraced(t *testing.T) {
	hostLog := &trace.Log{}
	in := core.NewInstance(patterns.StarBroadcast(2),
		core.WithTracer(hostLog), core.WithSampler(trace.NeverSample()))
	defer in.Close()
	_, addr := startHost(t, in, remote.HostConfig{})

	clientLog := &trace.Log{}
	enr := remote.NewEnroller(addr, remote.EnrollerConfig{
		Script:  "star_broadcast",
		Sampler: trace.NeverSample(),
		Tracer:  clientLog,
	})
	defer enr.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	for i := 1; i <= 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := enr.Enroll(ctx, core.Enrollment{
				PID:  ids.PID(fmt.Sprintf("listener-%d", i)),
				Role: ids.Member(patterns.RoleRecipient, i),
				Body: recipientBody(i),
			})
			if err != nil {
				t.Errorf("listener-%d: %v", i, err)
			} else if res.TraceID != 0 {
				t.Errorf("listener-%d: unsampled trace ID = %s, want zero", i, res.TraceID)
			}
		}(i)
	}
	res, err := enr.Enroll(ctx, core.Enrollment{
		PID:  "announcer",
		Role: ids.Role(patterns.RoleSender),
		Args: []any{"ping"},
		Body: senderBody(2),
	})
	if err != nil {
		t.Fatalf("announcer: %v", err)
	}
	wg.Wait()
	if res.TraceID != 0 {
		t.Errorf("announcer trace ID = %s, want zero", res.TraceID)
	}
	if n := clientLog.Len(); n != 0 {
		t.Errorf("client log has %d events, want 0:\n%s", n, clientLog.Timeline())
	}
	// Only the pre-performance enroll events survive on the host; nothing
	// performance-scoped is recorded for an unsampled run.
	for _, e := range hostLog.Events() {
		if e.Kind != trace.KindEnroll {
			t.Errorf("host recorded %v for an unsampled performance:\n%s", e.Kind, hostLog.Timeline())
		}
	}
}
