package remote

import (
	"math/rand"
	"sync/atomic"
	"time"

	"github.com/scriptabs/goscript/internal/metrics"
	"github.com/scriptabs/goscript/internal/registry"
)

var staleLoadFallbacks = metrics.Get(metrics.StaleLoadFallbacks)

// DefaultStaleLoadAfter is how old a load digest may be before the
// least-loaded strategy stops trusting it, when EnrollerConfig.
// StaleLoadAfter is zero.
const DefaultStaleLoadAfter = 3 * time.Second

// HostView is one candidate host as a Balancer sees it for a single pick:
// its breaker state (never half-open — pickHost tiers those out) and its
// freshest registry-announced load digest. Views arrive pre-filtered — only
// hosts the enroller is willing to use right now — and pre-rotated by
// attempt, so index 0 differs between retries.
type HostView struct {
	Addr    string
	Breaker BreakerState
	// Load is the host's last announced digest; HasLoad is false when the
	// host has never announced one (static configs without a registry).
	Load    registry.Load
	HasLoad bool
	// LoadAge is how old the digest is; Stale means it is missing or older
	// than EnrollerConfig.StaleLoadAfter.
	LoadAge time.Duration
	Stale   bool
}

// Balancer chooses a host among the usable candidates of one enrollment
// attempt. Pick returns an index into views (out-of-range falls back to 0);
// rng is the enroller's seeded stream, already serialized, so strategies
// that randomize stay deterministic under RetryPolicy.Seed. Implementations
// must be safe for concurrent use (Pick is serialized per enroller by the
// rng lock today, but one Balancer may back several enrollers).
type Balancer interface {
	// Name labels the strategy in metrics
	// (remote_balancer_picks_<name>_total).
	Name() string
	Pick(views []HostView, rng *rand.Rand) int
}

// NewFailover returns the historical strategy: the first candidate wins.
// Views are rotated by attempt, so pure failover configs still spread
// retries instead of hammering index 0; on attempt 0 the first configured
// host is always the primary.
func NewFailover() Balancer { return failoverBalancer{} }

type failoverBalancer struct{}

func (failoverBalancer) Name() string                            { return "failover" }
func (failoverBalancer) Pick(views []HostView, _ *rand.Rand) int { _ = views; return 0 }

// NewRandom returns the uniform random strategy: stateless, spreads load
// evenly in expectation, deterministic under the enroller's seed.
func NewRandom() Balancer { return randomBalancer{} }

type randomBalancer struct{}

func (randomBalancer) Name() string { return "random" }
func (randomBalancer) Pick(views []HostView, rng *rand.Rand) int {
	return rng.Intn(len(views))
}

// NewRoundRobin returns the rotating strategy: successive picks walk the
// candidate list, giving the tightest spread when hosts are homogeneous.
// The cursor is per-Balancer, so share one value across enrollers to
// rotate globally.
func NewRoundRobin() Balancer { return &roundRobinBalancer{} }

type roundRobinBalancer struct {
	cursor atomic.Uint64
}

func (*roundRobinBalancer) Name() string { return "round_robin" }
func (b *roundRobinBalancer) Pick(views []HostView, _ *rand.Rand) int {
	return int((b.cursor.Add(1) - 1) % uint64(len(views)))
}

// NewLeastLoaded returns the least-shed/least-pending strategy: among
// candidates with fresh digests it picks the lowest load score — recent
// sheds dominate (a shedding host is full no matter what its counters
// say), then the pending-offer backlog, then admitted enrollments, then
// connections. Ties, and the all-digests-stale fallback (counted in
// remote_stale_load_fallbacks_total), rotate round-robin so equally-loaded
// hosts share the traffic instead of herding onto the first.
func NewLeastLoaded() Balancer { return &leastLoadedBalancer{} }

type leastLoadedBalancer struct {
	cursor atomic.Uint64
}

func (*leastLoadedBalancer) Name() string { return "least_loaded" }

func loadScore(l registry.Load) uint64 {
	s := l.ShedRecent * 1_000_000
	s += uint64(max(l.PendingOffers, 0)) * 100
	s += uint64(max(l.Enrolling, 0)) * 10
	s += uint64(max(l.Conns, 0))
	return s
}

func (b *leastLoadedBalancer) Pick(views []HostView, _ *rand.Rand) int {
	best := -1
	var bestScore uint64
	ties := 0
	for i, v := range views {
		if v.Stale {
			continue
		}
		s := loadScore(v.Load)
		switch {
		case best < 0 || s < bestScore:
			best, bestScore, ties = i, s, 1
		case s == bestScore:
			ties++
		}
	}
	if best < 0 {
		// Every digest is stale (or absent): fall back to round-robin
		// rather than trusting dead information.
		staleLoadFallbacks.Inc()
		return int((b.cursor.Add(1) - 1) % uint64(len(views)))
	}
	if ties > 1 {
		// Rotate among the tied minimum so equal hosts split the traffic.
		k := int(b.cursor.Add(1)-1) % ties
		for i, v := range views {
			if v.Stale || loadScore(v.Load) != bestScore {
				continue
			}
			if k == 0 {
				return i
			}
			k--
		}
	}
	return best
}
