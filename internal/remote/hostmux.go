package remote

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/scriptabs/goscript/internal/core"
	"github.com/scriptabs/goscript/internal/ids"
	"github.com/scriptabs/goscript/internal/trace"
	"github.com/scriptabs/goscript/internal/wire"
)

// This file is the host side of SCRW v2 connection multiplexing: one
// connection carries many concurrent enrollments, each on its own stream
// ID. The connection loop owns the read side and routes decoded frames to
// per-stream goroutines; writes interleave on the shared connection under
// wire.Conn's write lock. Compare serveConn's v1 path in host.go, where one
// connection serves exactly one enrollment conversation at a time.

// streamOpBacklog bounds undrained ops buffered per stream. The client
// pipelines ops without awaiting results, so the backlog is deeper than
// v1's lock-step window; a client exceeding it is flooding. (Kept modest:
// the channel is allocated per enrollment, so its capacity is hot-path
// garbage.)
const streamOpBacklog = 16

// hostStream is the connection loop's handle on one in-flight enrollment.
type hostStream struct {
	b   *bridge
	ctx context.Context
	// cancel ends the enrollment's context: offer withdrawal before
	// assignment, part of teardown after.
	cancel context.CancelFunc
}

// streamTask is one enrollment handed to a connection's stream workers.
type streamTask struct {
	stream uint64
	st     *hostStream
	m      *wire.Enroll
}

// serveConnV2 serves one v2 multiplexed connection until it dies. The loop
// is the single reader; stream workers write their own frames.
//
// Enrollments run on a small pool of per-connection worker goroutines that
// grows to the connection's concurrency high-water mark: a worker is
// spawned only when no idle one is ready to take the task, and workers
// are reused across enrollments so their (deep: core engine + codec)
// stacks are grown once, not per enrollment.
func (h *Host) serveConnV2(c *wire.Conn) {
	var (
		smu     sync.Mutex
		streams = make(map[uint64]*hostStream)
		wg      sync.WaitGroup
		tasks   = make(chan streamTask)
	)
	work := func(t streamTask) {
		h.activeStreams.Add(1)
		h.serveStream(t.st.ctx, c, t.stream, t.st, t.m)
		h.activeStreams.Add(-1)
		smu.Lock()
		delete(streams, t.stream)
		c.SetWriteBatching(len(streams) > 1)
		smu.Unlock()
		t.st.cancel()
	}
	// Conn death (read error, heartbeat silence, protocol violation): every
	// live stream lost its enroller — reclaim performances exactly like a
	// v1 disconnect, then wait out the stream workers.
	defer func() {
		c.Close()
		close(tasks)
		smu.Lock()
		for _, st := range streams {
			st.b.disconnect("remote enroller disconnected")
			st.cancel()
		}
		smu.Unlock()
		wg.Wait()
	}()

	violate := func(format string, args ...any) {
		msg := fmt.Sprintf(format, args...)
		h.logf("remote: %s: protocol violation: %s", c.RemoteAddr(), msg)
		_ = c.WriteFrame(wire.MsgError, 0, 0, wire.ProtoError{Msg: msg})
	}

	for {
		t, stream, seq, m, err := c.ReadFrame()
		if err != nil {
			return
		}
		if t == wire.MsgHeartbeat {
			continue
		}
		if h.cfg.Faults != nil && h.cfg.Faults.DropConn() {
			return
		}
		switch t {
		case wire.MsgEnroll:
			if stream == 0 {
				violate("ENROLL on reserved stream 0")
				return
			}
			smu.Lock()
			_, exists := streams[stream]
			smu.Unlock()
			if exists {
				violate("ENROLL reuses live stream %d", stream)
				return
			}
			ctx, cancel := context.WithCancel(h.baseCtx)
			st := &hostStream{
				b: &bridge{
					conn:     c,
					opCh:     make(chan hostOp, streamOpBacklog),
					quit:     make(chan struct{}),
					v2:       true,
					streamID: stream,
				},
				ctx:    ctx,
				cancel: cancel,
			}
			smu.Lock()
			streams[stream] = st
			c.SetWriteBatching(len(streams) > 1)
			smu.Unlock()
			task := streamTask{stream: stream, st: st, m: m.(*wire.Enroll)}
			select {
			case tasks <- task:
				// An idle worker took it.
			default:
				wg.Add(1)
				go func() {
					defer wg.Done()
					work(task)
					for t := range tasks {
						work(t)
					}
				}()
			}
		case wire.MsgCancel:
			// The enroller withdrew this enrollment (its context ended). A
			// missing stream is the benign race with COMPLETE, not an error.
			smu.Lock()
			st := streams[stream]
			smu.Unlock()
			if st != nil {
				st.b.disconnect("enrollment canceled by enroller")
				st.cancel()
			}
		case wire.MsgSend, wire.MsgSendAll, wire.MsgRecv, wire.MsgRecvAny,
			wire.MsgSelect, wire.MsgQuery, wire.MsgBodyDone:
			smu.Lock()
			st := streams[stream]
			smu.Unlock()
			if st == nil {
				// Raced with the stream's terminal frame (cancel, abort):
				// drop, the enrollment already has its outcome.
				continue
			}
			select {
			case st.b.opCh <- hostOp{typ: t, seq: seq, m: m}:
			default:
				st.b.disconnect("protocol violation: operation flood")
				violate("operation flood on stream %d", stream)
				return
			}
		default:
			violate("unexpected %s", t)
			return
		}
	}
}

// serveStream runs one enrollment conversation on its stream: admission,
// target enrollment (the bridge body relays ops meanwhile), terminal
// COMPLETE/DRAIN. It is handleEnroll's multiplexed sibling; disconnect
// detection lives with the connection loop instead of a frames select.
func (h *Host) serveStream(ctx context.Context, c *wire.Conn, stream uint64, st *hostStream, m *wire.Enroll) {
	role, err := wire.DecodeRoleRef(m.Role)
	if err != nil {
		h.completeV2(c, stream, ids.RoleRef{}, core.Result{}, fmt.Errorf("%w: %s", core.ErrUnknownRole, m.Role))
		return
	}
	switch verdict, reason := h.admitEnroll(); verdict {
	case enrollClosed:
		return
	case enrollDrain:
		_ = c.WriteFrame(wire.MsgDrain, stream, 0, wire.Drain{})
		return
	case enrollShed:
		h.shedEnrolls.Add(1)
		shedEnrollsTotal.Inc()
		h.logf("remote: %s: shedding ENROLL for %s: %s", c.RemoteAddr(), role, reason)
		h.completeV2(c, stream, role, core.Result{}, &core.OverloadError{
			Script:     h.script,
			RetryAfter: h.retryAfterHint(),
			Reason:     reason,
		})
		return
	}
	defer h.enrollWG.Done()
	defer h.enrolling.Add(-1)

	with, err := wire.DecodeWith(m.With)
	if err != nil {
		h.completeV2(c, stream, role, core.Result{}, err)
		return
	}
	e := core.Enrollment{
		PID:  ids.PID(m.PID),
		Role: role,
		Args: m.Args,
		With: with,
		Body: st.b.run,
	}
	if m.DeadlineMS > 0 {
		e.Deadline = time.UnixMilli(m.DeadlineMS)
	}
	// As in handleEnroll: a malformed client trace ID degrades to an
	// untraced call rather than an error.
	e.TraceID, _ = trace.ParseTraceID(m.TraceID)
	res, err := h.target.Enroll(ctx, e)
	h.completeV2(c, stream, role, res, err)
}

// completeV2 reports an enrollment's outcome on its stream. A write
// failure means the connection died; the connection loop notices on its
// next read.
func (h *Host) completeV2(c *wire.Conn, stream uint64, role ids.RoleRef, res core.Result, err error) {
	if errors.Is(err, core.ErrDraining) {
		_ = c.WriteFrame(wire.MsgDrain, stream, 0, wire.Drain{})
		return
	}
	msg := wire.Complete{
		Performance: res.Performance,
		Role:        role.String(),
		Values:      res.Values,
		Err:         wire.EncodeError(err),
	}
	if res.Role.Name != "" {
		msg.Role = res.Role.String()
	}
	_ = c.WriteFrame(wire.MsgComplete, stream, 0, msg)
}
