package remote

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/scriptabs/goscript/internal/core"
	"github.com/scriptabs/goscript/internal/ids"
	"github.com/scriptabs/goscript/internal/trace"
	"github.com/scriptabs/goscript/internal/wire"
)

// This file is the host side of SCRW v2 connection multiplexing and session
// resumption: one connection carries many concurrent enrollments, each on
// its own stream ID, and — when HostConfig.ResumeWindow is set — the
// conversation survives the connection. The per-conversation state lives in
// a hostSession, which outlives any one transport: a connection death with
// live streams *parks* the session for the grace window instead of aborting
// its performances, and a client redialing with the session token within
// the window re-attaches via a RESUME/RESUME-ACK exchange that replays the
// frames the blip swallowed. With resumption off (the default) a session
// dies with its only connection, which is exactly the pre-resumption
// behavior. Compare serveConn's v1 path in host.go, where one connection
// serves exactly one enrollment conversation at a time and every loss is an
// abort.

// streamOpBacklog bounds undrained ops buffered per stream. The client
// pipelines ops without awaiting results, so the backlog is deeper than
// v1's lock-step window; a client exceeding it is flooding. (Kept modest:
// the channel is allocated per enrollment, so its capacity is hot-path
// garbage.)
const streamOpBacklog = 16

// hostStream is the session's handle on one in-flight enrollment.
type hostStream struct {
	b   *bridge
	ctx context.Context
	// cancel ends the enrollment's context: offer withdrawal before
	// assignment, part of teardown after.
	cancel context.CancelFunc
}

// streamTask is one enrollment handed to a session's stream workers.
type streamTask struct {
	stream uint64
	st     *hostStream
	remote string
	m      *wire.Enroll
}

// hostSession owns the server side of one v2 conversation across however
// many transport connections it takes to finish it. Its lifecycle:
// attached (cur serves it) → broken → parked (resumable, grace timer
// running) or torn down; a RESUME within the grace window re-attaches it.
// Sessions whose handshake did not negotiate resumption (token == "") skip
// the parked state entirely: their first break is their teardown.
type hostSession struct {
	h     *Host
	token string        // "" when resumption was not negotiated
	sess  *wire.Session // nil iff token == ""

	smu     sync.Mutex
	cur     *wire.Conn // connection currently serving; nil while parked
	streams map[uint64]*hostStream
	byed    bool        // client sent BYE: never park again
	done    bool        // torn down
	timer   *time.Timer // grace timer while parked

	// Enrollments run on a small pool of stream-worker goroutines that
	// grows to the session's concurrency high-water mark: a worker is
	// spawned only when no idle one is ready to take the task, and workers
	// are reused across enrollments so their (deep: core engine + codec)
	// stacks are grown once, not per enrollment.
	wg    sync.WaitGroup
	tasks chan streamTask
}

func newHostSession(h *Host, c *wire.Conn, token string) *hostSession {
	s := &hostSession{
		h:       h,
		token:   token,
		cur:     c,
		streams: make(map[uint64]*hostStream),
		tasks:   make(chan streamTask),
	}
	if token != "" {
		s.sess = wire.NewSession(c, token, h.cfg.ResumeBufBytes)
	}
	return s
}

// writer is where this session's stream frames go: the resumable session
// (stable across reconnects) or, when resumption was not negotiated, the
// conversation's only connection.
func (s *hostSession) writer() frameWriter {
	if s.sess != nil {
		return s.sess
	}
	return s.cur
}

// mintSessionToken returns a fresh unguessable session token, or "" if the
// system's entropy source fails (in which case resumption is silently not
// offered on this connection).
func mintSessionToken() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return ""
	}
	return hex.EncodeToString(b[:])
}

func (h *Host) registerSession(s *hostSession) {
	h.mu.Lock()
	h.sessions[s.token] = s
	h.mu.Unlock()
}

func (h *Host) unregisterSession(s *hostSession) {
	h.mu.Lock()
	if h.sessions[s.token] == s {
		delete(h.sessions, s.token)
	}
	h.mu.Unlock()
}

// serveConnV2 serves one v2 multiplexed connection until it dies. The first
// frame decides what the connection is: a RESUME re-attaches an existing
// session (parked, or live on a connection whose death the client noticed
// first); anything else starts a fresh session with that frame as its first
// traffic.
func (h *Host) serveConnV2(c *wire.Conn, token string) {
	t, stream, seq, m, err := c.ReadFrame()
	if err != nil {
		return
	}
	if t == wire.MsgResume {
		s := h.adoptSession(c, m.(*wire.Resume))
		if s == nil {
			return
		}
		h.runConnV2(s, c, nil)
		return
	}
	s := newHostSession(h, c, token)
	if token != "" {
		h.registerSession(s)
	}
	h.runConnV2(s, c, &preRead{t: t, stream: stream, seq: seq, m: m})
}

// adoptSession re-attaches the session named by a RESUME to a freshly
// handshaken connection: RESUME-ACK (carrying our receipt count, the
// client's prune+replay instruction) goes out first, then the unacked
// suffix of our own ring. A draining host adopts too — drain honors parked
// work; only *new* enrollments on the resumed connection answer DRAIN.
// Refusals (unknown/expired token, unresumable ring) are answered with a
// protocol error so the client fails over to its terminal path at once.
func (h *Host) adoptSession(c *wire.Conn, r *wire.Resume) *hostSession {
	refuse := func(msg string) {
		h.logf("remote: %s: refusing RESUME: %s", c.RemoteAddr(), msg)
		_ = c.WriteFrame(wire.MsgError, 0, 0, wire.ProtoError{Msg: "RESUME refused: " + msg})
	}
	h.mu.Lock()
	s := h.sessions[r.Token]
	h.mu.Unlock()
	if s == nil {
		refuse("unknown or expired session")
		return nil
	}
	if !s.adopt(c, r, refuse) {
		return nil
	}
	return s
}

func (s *hostSession) adopt(c *wire.Conn, r *wire.Resume, refuse func(string)) bool {
	s.smu.Lock()
	if s.done {
		s.smu.Unlock()
		refuse("session already torn down")
		return false
	}
	if old := s.cur; old != nil {
		// The client noticed the break before we did. Supersede: closing
		// the old connection fails its read loop, which finds it is no
		// longer current and leaves the session alone.
		s.sess.Detach()
		old.Close()
	}
	if s.timer != nil {
		s.timer.Stop()
		s.timer = nil
	}
	s.cur = c
	n := len(s.streams)
	s.smu.Unlock()

	// RESUME-ACK strictly before the replayed suffix (both from this
	// goroutine, through the conn's ordered writer): the enroller reads the
	// ack synchronously before releasing its own writers onto the wire.
	if err := c.WriteFrame(wire.MsgResumeAck, 0, 0, wire.ResumeAck{RecvCount: s.sess.RecvCount()}); err != nil {
		s.connBroken(c) // fresh transport died instantly: park again
		return false
	}
	if err := s.sess.Resume(c, r.RecvCount); err != nil {
		if errors.Is(err, wire.ErrSessionDoomed) || errors.Is(err, wire.ErrResumeInvalid) {
			// Exactly-once replay is impossible: refuse and degrade to the
			// abort path, which is the bounded-memory contract.
			s.smu.Lock()
			s.cur = nil
			s.smu.Unlock()
			refuse(err.Error())
			s.teardown()
			return false
		}
		s.connBroken(c) // transport error mid-replay: park again
		return false
	}
	sessionsResumed.Inc()
	s.h.logf("remote: %s: session resumed (%d streams live)", c.RemoteAddr(), n)
	return true
}

// connBroken is the read loop's exit path for a transport failure on c. If
// the session is still resumable — resumption negotiated, grace window
// configured, live streams worth protecting, ring intact, no BYE, host not
// closing — it parks for the grace window; otherwise it tears down, which
// reproduces the pre-resumption abort semantics exactly.
func (s *hostSession) connBroken(c *wire.Conn) {
	s.smu.Lock()
	if s.done || s.cur != c {
		// Torn down already, or superseded by a RESUME on a newer
		// connection: this transport's death is old news.
		s.smu.Unlock()
		return
	}
	s.cur = nil
	window := s.h.cfg.ResumeWindow
	parkable := s.sess != nil && window > 0 && !s.byed &&
		len(s.streams) > 0 && !s.sess.Doomed() && !s.h.isClosed()
	if !parkable {
		s.smu.Unlock()
		s.teardown()
		return
	}
	s.sess.Detach()
	s.timer = time.AfterFunc(window, s.expire)
	n := len(s.streams)
	s.smu.Unlock()
	sessionsParked.Inc()
	s.h.logf("remote: session parked: %d streams live, %s grace", n, window)
}

// expire fires when the grace window elapses with the session still parked:
// the transport failure hardens into a session failure and every live
// stream is reclaimed through the same path a plain disconnect uses.
func (s *hostSession) expire() {
	s.smu.Lock()
	if s.done || s.cur != nil {
		s.smu.Unlock()
		return
	}
	s.smu.Unlock()
	sessionsExpired.Inc()
	s.h.logf("remote: parked session expired after %s", s.h.cfg.ResumeWindow)
	s.teardown()
}

// teardown ends the session for good: every live stream lost its enroller —
// reclaim performances exactly like a v1 disconnect, then wait out the
// stream workers. Idempotent; safe from any goroutine.
func (s *hostSession) teardown() {
	s.smu.Lock()
	if s.done {
		s.smu.Unlock()
		return
	}
	s.done = true
	if s.timer != nil {
		s.timer.Stop()
		s.timer = nil
	}
	cur := s.cur
	s.cur = nil
	streams := make([]*hostStream, 0, len(s.streams))
	for _, st := range s.streams {
		streams = append(streams, st)
	}
	close(s.tasks)
	s.smu.Unlock()
	if s.sess != nil {
		s.sess.Detach()
		s.h.unregisterSession(s)
	}
	if cur != nil {
		cur.Close()
	}
	for _, st := range streams {
		st.b.disconnect("remote enroller disconnected")
		st.cancel()
	}
	s.wg.Wait()
}

// work runs one enrollment to completion on a stream-worker goroutine.
func (s *hostSession) work(t streamTask) {
	s.h.activeStreams.Add(1)
	s.h.serveStream(t.st.ctx, t.remote, t.stream, t.st, t.m)
	s.h.activeStreams.Add(-1)
	s.smu.Lock()
	delete(s.streams, t.stream)
	if s.cur != nil {
		s.cur.SetWriteBatching(len(s.streams) > 1)
	}
	s.smu.Unlock()
	t.st.cancel()
}

// preRead carries serveConnV2's already-read first frame into the loop.
type preRead struct {
	t           wire.MsgType
	stream, seq uint64
	m           any
}

// runConnV2 runs the read loop binding one transport connection to its
// session. It returns when the transport is unusable; the deferred exit
// routes to park-or-teardown for transport failures and straight to
// teardown for protocol violations (a violating client is not a blip).
func (h *Host) runConnV2(s *hostSession, c *wire.Conn, first *preRead) {
	fatal := false
	defer func() {
		if fatal {
			s.teardown()
		} else {
			s.connBroken(c)
		}
	}()

	violate := func(format string, args ...any) {
		msg := fmt.Sprintf(format, args...)
		h.logf("remote: %s: protocol violation: %s", c.RemoteAddr(), msg)
		_ = c.WriteFrame(wire.MsgError, 0, 0, wire.ProtoError{Msg: msg})
	}

	handle := func(t wire.MsgType, stream, seq uint64, m any) bool {
		if t == wire.MsgHeartbeat {
			return true
		}
		if h.cfg.Faults != nil && h.cfg.Faults.DropConn() {
			return false
		}
		if stream != 0 && s.sess != nil {
			// Every stream frame counts toward the cumulative receipt state
			// the resume exchange reconciles (and, on cadence, acks).
			s.sess.MaybeAck()
		}
		switch t {
		case wire.MsgAck:
			if s.sess == nil {
				fatal = true
				violate("ACK without a resumable session")
				return false
			}
			s.sess.PeerAck(m.(*wire.Ack).Count)
		case wire.MsgBye:
			// The client is done with the session for good (orderly close):
			// free parked-state eligibility now rather than holding the
			// grace window open for a peer that will never return.
			s.smu.Lock()
			s.byed = true
			s.smu.Unlock()
		case wire.MsgResume:
			fatal = true
			violate("RESUME after session establishment")
			return false
		case wire.MsgEnroll:
			if stream == 0 {
				fatal = true
				violate("ENROLL on reserved stream 0")
				return false
			}
			ctx, cancel := context.WithCancel(h.baseCtx)
			st := &hostStream{
				b: &bridge{
					fw:       s.writer(),
					opCh:     make(chan hostOp, streamOpBacklog),
					quit:     make(chan struct{}),
					v2:       true,
					streamID: stream,
				},
				ctx:    ctx,
				cancel: cancel,
			}
			task := streamTask{stream: stream, st: st, remote: fmt.Sprint(c.RemoteAddr()), m: m.(*wire.Enroll)}
			s.smu.Lock()
			if s.done {
				// Host shutdown raced the enroll; the conn is closing.
				s.smu.Unlock()
				cancel()
				return false
			}
			if _, exists := s.streams[stream]; exists {
				s.smu.Unlock()
				cancel()
				fatal = true
				violate("ENROLL reuses live stream %d", stream)
				return false
			}
			s.streams[stream] = st
			c.SetWriteBatching(len(s.streams) > 1)
			select {
			case s.tasks <- task:
				// An idle worker took it.
			default:
				s.wg.Add(1)
				go func() {
					defer s.wg.Done()
					s.work(task)
					for t := range s.tasks {
						s.work(t)
					}
				}()
			}
			s.smu.Unlock()
		case wire.MsgCancel:
			// The enroller withdrew this enrollment (its context ended). A
			// missing stream is the benign race with COMPLETE, not an error.
			s.smu.Lock()
			st := s.streams[stream]
			s.smu.Unlock()
			if st != nil {
				st.b.disconnect("enrollment canceled by enroller")
				st.cancel()
			}
		case wire.MsgSend, wire.MsgSendAll, wire.MsgRecv, wire.MsgRecvAny,
			wire.MsgSelect, wire.MsgQuery, wire.MsgBodyDone:
			s.smu.Lock()
			st := s.streams[stream]
			s.smu.Unlock()
			if st == nil {
				// Raced with the stream's terminal frame (cancel, abort):
				// drop, the enrollment already has its outcome.
				return true
			}
			select {
			case st.b.opCh <- hostOp{typ: t, seq: seq, m: m}:
			default:
				st.b.disconnect("protocol violation: operation flood")
				fatal = true
				violate("operation flood on stream %d", stream)
				return false
			}
		default:
			fatal = true
			violate("unexpected %s", t)
			return false
		}
		return true
	}

	if first != nil && !handle(first.t, first.stream, first.seq, first.m) {
		return
	}
	for {
		t, stream, seq, m, err := c.ReadFrame()
		if err != nil {
			return
		}
		if !handle(t, stream, seq, m) {
			return
		}
	}
}

// serveStream runs one enrollment conversation on its stream: admission,
// target enrollment (the bridge body relays ops meanwhile), terminal
// COMPLETE/DRAIN. It is handleEnroll's multiplexed sibling; disconnect
// detection lives with the session instead of a frames select. All frames
// go through the stream's bridge writer, so they survive reconnects on a
// resumable session.
func (h *Host) serveStream(ctx context.Context, remote string, stream uint64, st *hostStream, m *wire.Enroll) {
	role, err := wire.DecodeRoleRef(m.Role)
	if err != nil {
		h.completeV2(st.b.fw, stream, ids.RoleRef{}, core.Result{}, fmt.Errorf("%w: %s", core.ErrUnknownRole, m.Role))
		return
	}
	switch verdict, reason := h.admitEnroll(); verdict {
	case enrollClosed:
		return
	case enrollDrain:
		_ = st.b.fw.WriteFrame(wire.MsgDrain, stream, 0, wire.Drain{})
		return
	case enrollShed:
		h.shedEnrolls.Add(1)
		shedEnrollsTotal.Inc()
		h.logf("remote: %s: shedding ENROLL for %s: %s", remote, role, reason)
		h.completeV2(st.b.fw, stream, role, core.Result{}, &core.OverloadError{
			Script:     h.script,
			RetryAfter: h.retryAfterHint(),
			Reason:     reason,
		})
		return
	}
	defer h.enrollWG.Done()
	defer h.enrolling.Add(-1)

	with, err := wire.DecodeWith(m.With)
	if err != nil {
		h.completeV2(st.b.fw, stream, role, core.Result{}, err)
		return
	}
	e := core.Enrollment{
		PID:  ids.PID(m.PID),
		Role: role,
		Args: m.Args,
		With: with,
		Body: st.b.run,
	}
	if m.DeadlineMS > 0 {
		e.Deadline = time.UnixMilli(m.DeadlineMS)
	}
	// As in handleEnroll: a malformed client trace ID degrades to an
	// untraced call rather than an error.
	e.TraceID, _ = trace.ParseTraceID(m.TraceID)
	res, err := h.target.Enroll(ctx, e)
	h.completeV2(st.b.fw, stream, role, res, err)
}

// completeV2 reports an enrollment's outcome on its stream. A write
// failure means the connection died; the session's read loop notices on
// its next read (and on a resumable session the frame is retained and
// replayed, so the outcome is never lost to a blip).
func (h *Host) completeV2(fw frameWriter, stream uint64, role ids.RoleRef, res core.Result, err error) {
	if errors.Is(err, core.ErrDraining) {
		_ = fw.WriteFrame(wire.MsgDrain, stream, 0, wire.Drain{})
		return
	}
	msg := wire.Complete{
		Performance: res.Performance,
		Role:        role.String(),
		Values:      res.Values,
		Err:         wire.EncodeError(err),
	}
	if res.Role.Name != "" {
		msg.Role = res.Role.String()
	}
	_ = fw.WriteFrame(wire.MsgComplete, stream, 0, msg)
}
