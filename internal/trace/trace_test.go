package trace

import (
	"strings"
	"sync"
	"testing"

	"github.com/scriptabs/goscript/internal/ids"
)

func TestLogAssignsIncreasingSeq(t *testing.T) {
	var l Log
	for i := 0; i < 5; i++ {
		l.Record(Event{Kind: KindEnroll, Script: "s"})
	}
	evs := l.Events()
	if len(evs) != 5 {
		t.Fatalf("len = %d, want 5", len(evs))
	}
	for i, e := range evs {
		if e.Seq != i+1 {
			t.Errorf("event %d has Seq %d, want %d", i, e.Seq, i+1)
		}
	}
}

func TestLogConcurrentRecord(t *testing.T) {
	var l Log
	const goroutines, per = 8, 100
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				l.Record(Event{Kind: KindSend, Script: "s"})
			}
		}()
	}
	wg.Wait()
	if got := l.Len(); got != goroutines*per {
		t.Fatalf("Len = %d, want %d", got, goroutines*per)
	}
	// Sequence numbers must be a permutation of 1..N in recorded order.
	for i, e := range l.Events() {
		if e.Seq != i+1 {
			t.Fatalf("event %d has Seq %d; log order must equal seq order", i, e.Seq)
		}
	}
}

func TestLogEventsReturnsCopy(t *testing.T) {
	var l Log
	l.Record(Event{Kind: KindStart, Script: "s"})
	evs := l.Events()
	evs[0].Script = "mutated"
	if l.Events()[0].Script != "s" {
		t.Error("Events must return a copy, not alias internal storage")
	}
}

func TestLogReset(t *testing.T) {
	var l Log
	l.Record(Event{Kind: KindStart})
	l.Reset()
	if l.Len() != 0 {
		t.Fatal("Reset did not clear events")
	}
	l.Record(Event{Kind: KindStart})
	if l.Events()[0].Seq != 1 {
		t.Error("Reset did not restart sequence numbering")
	}
}

func TestBeforeAndFirst(t *testing.T) {
	var l Log
	a := ids.PID("A")
	d := ids.PID("D")
	l.Record(Event{Kind: KindFinish, Role: ids.Role("p"), PID: a})
	l.Record(Event{Kind: KindStart, Role: ids.Role("p"), PID: d})

	if !l.Before(ByKind(KindFinish, ids.Role("p"), a), ByKind(KindStart, ids.Role("p"), d)) {
		t.Error("A's finish should precede D's start")
	}
	if l.Before(ByKind(KindStart, ids.Role("p"), d), ByKind(KindFinish, ids.Role("p"), a)) {
		t.Error("reverse order must be false")
	}
	if l.Before(ByKind(KindRelease, ids.RoleRef{}, ""), ByKind(KindStart, ids.RoleRef{}, "")) {
		t.Error("Before with missing event must be false")
	}
	if _, ok := l.First(func(e Event) bool { return e.Kind == KindSend }); ok {
		t.Error("First must report not-found for absent kind")
	}
}

func TestByKindMatchesWildcards(t *testing.T) {
	e := Event{Kind: KindStart, Role: ids.Member("r", 2), PID: "B"}
	if !ByKind(KindStart, ids.RoleRef{}, "")(e) {
		t.Error("wildcard role+pid should match")
	}
	if !ByKind(KindStart, ids.Member("r", 2), "B")(e) {
		t.Error("exact match should match")
	}
	if ByKind(KindStart, ids.Member("r", 1), "")(e) {
		t.Error("wrong index must not match")
	}
	if ByKind(KindFinish, ids.RoleRef{}, "")(e) {
		t.Error("wrong kind must not match")
	}
}

func TestFilter(t *testing.T) {
	var l Log
	l.Record(Event{Kind: KindSend})
	l.Record(Event{Kind: KindRecv})
	l.Record(Event{Kind: KindSend})
	sends := l.Filter(func(e Event) bool { return e.Kind == KindSend })
	if len(sends) != 2 {
		t.Fatalf("got %d sends, want 2", len(sends))
	}
	if sends[0].Seq >= sends[1].Seq {
		t.Error("Filter must preserve order")
	}
}

func TestEventString(t *testing.T) {
	e := Event{
		Seq: 12, Kind: KindSend, Script: "broadcast", Performance: 1,
		Role: ids.Role("sender"), Peer: ids.Member("recipient", 2),
		Detail: "x=42", PID: "A",
	}
	s := e.String()
	for _, want := range []string{"#12", "perf=1", "send", "broadcast", "sender", "recipient[2]", "x=42", "by A"} {
		if !strings.Contains(s, want) {
			t.Errorf("Event.String() = %q, missing %q", s, want)
		}
	}
}

func TestKindString(t *testing.T) {
	if KindEnroll.String() != "enroll" || KindPerfEnd.String() != "perf-end" {
		t.Error("kind names wrong")
	}
	if got := Kind(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown kind String = %q", got)
	}
}

func TestTimelineNarrative(t *testing.T) {
	var l Log
	l.Record(Event{Kind: KindEnroll, Script: "s", Role: ids.Role("p"), PID: "A"})
	l.Record(Event{Kind: KindPerfStart, Script: "s", Performance: 1})
	l.Record(Event{Kind: KindStart, Script: "s", Role: ids.Role("p"), PID: "A", Performance: 1})
	l.Record(Event{Kind: KindSend, Script: "s", Role: ids.Role("p"), Peer: ids.Role("q"), Performance: 1})
	l.Record(Event{Kind: KindFinish, Script: "s", Role: ids.Role("p"), PID: "A", Performance: 1})
	l.Record(Event{Kind: KindAbsent, Script: "s", Role: ids.Role("q"), Performance: 1})
	l.Record(Event{Kind: KindRelease, Script: "s", PID: "A", Performance: 1})
	l.Record(Event{Kind: KindPerfEnd, Script: "s", Performance: 1})
	tl := l.Timeline()
	for _, want := range []string{
		"A offers to enroll as p",
		"performance 1 of s begins",
		"A begins role p (performance 1)",
		"p sends to q",
		"A finishes its role as p",
		"role q is marked absent for performance 1",
		"A is released from the script",
		"performance 1 of s ends",
	} {
		if !strings.Contains(tl, want) {
			t.Errorf("timeline missing %q:\n%s", want, tl)
		}
	}
}

func TestNopTracer(t *testing.T) {
	var n Nop
	n.Record(Event{Kind: KindSend}) // must not panic
}
