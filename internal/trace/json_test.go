package trace

import (
	"bytes"
	"strings"
	"testing"

	"github.com/scriptabs/goscript/internal/ids"
)

func sampleEvents() []Event {
	return []Event{
		{Seq: 1, Kind: KindPerfStart, Script: "s", Performance: 1},
		{Seq: 2, Kind: KindStart, Script: "s", Performance: 1, Role: ids.Role("sender"), PID: "T"},
		{Seq: 3, Kind: KindSend, Script: "s", Performance: 1,
			Role: ids.Role("sender"), Peer: ids.Member("recipient", 2), PID: "T", Detail: "tag"},
		{Seq: 4, Kind: KindFinish, Script: "s", Performance: 1, Role: ids.Role("sender"), PID: "T"},
		{Seq: 5, Kind: KindPerfEnd, Script: "s", Performance: 1},
	}
}

func TestJSONRoundTrip(t *testing.T) {
	events := sampleEvents()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, events); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(events) {
		t.Fatalf("round trip length %d, want %d", len(back), len(events))
	}
	for i := range events {
		if back[i] != events[i] {
			t.Fatalf("event %d: %+v != %+v", i, back[i], events[i])
		}
	}
}

func TestJSONUsesPaperNotation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, sampleEvents()); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{`"recipient[2]"`, `"send"`, `"perf-start"`} {
		if !strings.Contains(s, want) {
			t.Errorf("JSON missing %s:\n%s", want, s)
		}
	}
}

func TestReadJSONErrors(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("not json")); err == nil {
		t.Error("garbage must fail")
	}
	if _, err := ReadJSON(strings.NewReader(`[{"kind":"nope"}]`)); err == nil {
		t.Error("unknown kind must fail")
	}
	if _, err := ReadJSON(strings.NewReader(`[{"kind":"send","role":"r[bad"}]`)); err == nil {
		t.Error("bad role ref must fail")
	}
	if _, err := ReadJSON(strings.NewReader(`[{"kind":"send","role":"a","peer":"r[bad"}]`)); err == nil {
		t.Error("bad peer ref must fail")
	}
	if evs, err := ReadJSON(strings.NewReader(`[]`)); err != nil || len(evs) != 0 {
		t.Error("empty array must round-trip")
	}
}
