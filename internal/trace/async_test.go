package trace

import (
	"sync"
	"testing"
	"time"

	"github.com/scriptabs/goscript/internal/ids"
)

func TestAsyncDeliversInOrder(t *testing.T) {
	log := &Log{}
	a := NewAsync(log, 64)
	defer a.Close()
	for i := 1; i <= 40; i++ {
		a.Record(Event{Kind: KindEnroll, Performance: i})
	}
	a.Flush()
	if got := log.Len(); got != 40 {
		t.Fatalf("sink has %d events, want 40", got)
	}
	for i, e := range log.Events() {
		if e.Performance != i+1 {
			t.Fatalf("event %d out of order: performance %d", i, e.Performance)
		}
		if e.Seq != i+1 {
			t.Fatalf("sink did not assign sequence: event %d has seq %d", i, e.Seq)
		}
	}
	if d := a.Dropped(); d != 0 {
		t.Fatalf("dropped %d events, want 0", d)
	}
}

func TestAsyncConcurrentRecorders(t *testing.T) {
	log := &Log{}
	a := NewAsync(log, 1<<12)
	defer a.Close()
	const workers, each = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				a.Record(Event{Kind: KindSend, Performance: w, Role: ids.Role("r")})
			}
		}()
	}
	wg.Wait()
	a.Flush()
	if got, want := log.Len(), workers*each; got != want {
		t.Fatalf("sink has %d events, want %d", got, want)
	}
	if d := a.Dropped(); d != 0 {
		t.Fatalf("dropped %d events, want 0", d)
	}
}

// slowSink delays every Record so the ring can fill up.
type slowSink struct {
	mu    sync.Mutex
	count int
}

func (s *slowSink) Record(Event) {
	time.Sleep(100 * time.Microsecond)
	s.mu.Lock()
	s.count++
	s.mu.Unlock()
}

func TestAsyncDropsWhenFull(t *testing.T) {
	sink := &slowSink{}
	a := NewAsync(sink, 8)
	const total = 5000
	for i := 0; i < total; i++ {
		a.Record(Event{Kind: KindRecv})
	}
	a.Flush()
	a.Close()
	dropped := int(a.Dropped())
	if dropped == 0 {
		t.Fatalf("expected drops with a slow sink and an 8-slot ring")
	}
	sink.mu.Lock()
	delivered := sink.count
	sink.mu.Unlock()
	if delivered+dropped != total {
		t.Fatalf("delivered %d + dropped %d != recorded %d", delivered, dropped, total)
	}
}

func TestAsyncCloseIdempotentAndLateRecord(t *testing.T) {
	log := &Log{}
	a := NewAsync(log, 16)
	a.Record(Event{Kind: KindEnroll})
	a.Close()
	a.Close()
	a.Record(Event{Kind: KindEnroll}) // must not panic; may be dropped
	if got := log.Len(); got != 1 {
		t.Fatalf("sink has %d events, want the 1 recorded before Close", got)
	}
}

func TestAsyncNilSinkAndSizeRounding(t *testing.T) {
	a := NewAsync(nil, 3) // rounds up to 4, discards into Nop
	defer a.Close()
	for i := 0; i < 10; i++ {
		a.Record(Event{})
	}
	a.Flush()
}
