package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/scriptabs/goscript/internal/ids"
)

// jsonEvent is the stable wire form of an Event. Role references use the
// paper's textual notation ("recipient[3]"), empty for none.
type jsonEvent struct {
	Seq         int    `json:"seq"`
	Kind        string `json:"kind"`
	Script      string `json:"script"`
	Performance int    `json:"performance,omitempty"`
	Role        string `json:"role,omitempty"`
	PID         string `json:"pid,omitempty"`
	Peer        string `json:"peer,omitempty"`
	Detail      string `json:"detail,omitempty"`
	TraceID     string `json:"trace_id,omitempty"`
}

var kindByName = func() map[string]Kind {
	m := make(map[string]Kind, len(kindNames))
	for k, n := range kindNames {
		m[n] = k
	}
	return m
}()

// WriteJSON writes the events as a JSON array (one event per line inside
// the array, for diffability).
func WriteJSON(w io.Writer, events []Event) error {
	out := make([]jsonEvent, 0, len(events))
	for _, e := range events {
		je := jsonEvent{
			Seq:         e.Seq,
			Kind:        e.Kind.String(),
			Script:      e.Script,
			Performance: e.Performance,
			PID:         string(e.PID),
			Detail:      e.Detail,
			TraceID:     e.TraceID.String(),
		}
		if e.Role.Name != "" {
			je.Role = e.Role.String()
		}
		if e.Peer.Name != "" {
			je.Peer = e.Peer.String()
		}
		out = append(out, je)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// ReadJSON parses a trace written by WriteJSON.
func ReadJSON(r io.Reader) ([]Event, error) {
	var in []jsonEvent
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	out := make([]Event, 0, len(in))
	for i, je := range in {
		kind, ok := kindByName[je.Kind]
		if !ok {
			return nil, fmt.Errorf("trace: event %d: unknown kind %q", i, je.Kind)
		}
		e := Event{
			Seq:         je.Seq,
			Kind:        kind,
			Script:      je.Script,
			Performance: je.Performance,
			PID:         ids.PID(je.PID),
			Detail:      je.Detail,
		}
		if je.TraceID != "" {
			tid, err := ParseTraceID(je.TraceID)
			if err != nil {
				return nil, fmt.Errorf("trace: event %d: %w", i, err)
			}
			e.TraceID = tid
		}
		if je.Role != "" {
			role, err := ids.ParseRoleRef(je.Role)
			if err != nil {
				return nil, fmt.Errorf("trace: event %d: %w", i, err)
			}
			e.Role = role
		}
		if je.Peer != "" {
			peer, err := ids.ParseRoleRef(je.Peer)
			if err != nil {
				return nil, fmt.Errorf("trace: event %d: %w", i, err)
			}
			e.Peer = peer
		}
		out = append(out, e)
	}
	return out, nil
}
