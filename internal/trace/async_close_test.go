package trace

import (
	"sync"
	"sync/atomic"
	"testing"
)

// countSink counts deliveries without the slowSink's latency.
type countSink struct{ n atomic.Uint64 }

func (s *countSink) Record(Event) { s.n.Add(1) }

// TestAsyncRecordVsCloseAccounting hammers Record from many goroutines while
// Close runs concurrently, and checks the hardening contract: every recorded
// event is either delivered to the sink or counted in Dropped() — none is
// silently lost to the final drain sweep racing an in-flight Record.
func TestAsyncRecordVsCloseAccounting(t *testing.T) {
	for round := 0; round < 50; round++ {
		sink := &countSink{}
		a := NewAsync(sink, 64)
		const workers, each = 8, 100
		var wg sync.WaitGroup
		start := make(chan struct{})
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for i := 0; i < each; i++ {
					a.Record(Event{Kind: KindSend})
				}
			}()
		}
		close(start)
		a.Close() // races the recorders by design
		wg.Wait()

		delivered := sink.n.Load()
		dropped := a.Dropped()
		if delivered+dropped != workers*each {
			t.Fatalf("round %d: delivered %d + dropped %d != recorded %d",
				round, delivered, dropped, workers*each)
		}
	}
}

// TestAsyncPostCloseRecordIsCountedNoop: after Close has returned, Record is
// a guaranteed no-op that increments Dropped() and never reaches the sink.
func TestAsyncPostCloseRecordIsCountedNoop(t *testing.T) {
	sink := &countSink{}
	a := NewAsync(sink, 16)
	a.Record(Event{Kind: KindEnroll})
	a.Close()
	before := a.Dropped()
	for i := 0; i < 25; i++ {
		a.Record(Event{Kind: KindEnroll})
	}
	if got, want := a.Dropped()-before, uint64(25); got != want {
		t.Fatalf("post-Close records counted %d drops, want %d", got, want)
	}
	if got := sink.n.Load(); got != 1 {
		t.Fatalf("sink saw %d events, want only the 1 pre-Close event", got)
	}
}
