package trace

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// countSink counts deliveries without the slowSink's latency.
type countSink struct{ n atomic.Uint64 }

func (s *countSink) Record(Event) { s.n.Add(1) }

// TestAsyncRecordVsCloseAccounting hammers Record from many goroutines while
// Close runs concurrently, and checks the hardening contract: every recorded
// event is either delivered to the sink or counted in Dropped() — none is
// silently lost to the final drain sweep racing an in-flight Record.
func TestAsyncRecordVsCloseAccounting(t *testing.T) {
	for round := 0; round < 50; round++ {
		sink := &countSink{}
		a := NewAsync(sink, 64)
		const workers, each = 8, 100
		var wg sync.WaitGroup
		start := make(chan struct{})
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for i := 0; i < each; i++ {
					a.Record(Event{Kind: KindSend})
				}
			}()
		}
		close(start)
		a.Close() // races the recorders by design
		wg.Wait()

		delivered := sink.n.Load()
		dropped := a.Dropped() + a.DroppedClosed()
		if delivered+dropped != workers*each {
			t.Fatalf("round %d: delivered %d + dropped %d != recorded %d",
				round, delivered, dropped, workers*each)
		}
	}
}

// TestAsyncPostCloseRecordIsCountedNoop: after Close has returned, Record is
// a guaranteed no-op that increments DroppedClosed() — not the ring-full
// counter — and never reaches the sink.
func TestAsyncPostCloseRecordIsCountedNoop(t *testing.T) {
	sink := &countSink{}
	a := NewAsync(sink, 16)
	a.Record(Event{Kind: KindEnroll})
	a.Close()
	before := a.DroppedClosed()
	for i := 0; i < 25; i++ {
		a.Record(Event{Kind: KindEnroll})
	}
	if got, want := a.DroppedClosed()-before, uint64(25); got != want {
		t.Fatalf("post-Close records counted %d closed-drops, want %d", got, want)
	}
	if got := a.Dropped(); got != 0 {
		t.Fatalf("post-Close records leaked into the ring-full counter: %d", got)
	}
	if got := sink.n.Load(); got != 1 {
		t.Fatalf("sink saw %d events, want only the 1 pre-Close event", got)
	}
}

// TestAsyncFlushVsCloseRace is the regression test for Flush returning
// early when it observes a closing tracer: a Flush that runs concurrently
// with (or after) Close must not return while the drainer's final sweep is
// still delivering published events. Run under -race this also exercises
// the Flush/Close/drainer synchronization.
func TestAsyncFlushVsCloseRace(t *testing.T) {
	for round := 0; round < 50; round++ {
		// A sink slow enough that events are still undelivered when Close's
		// final sweep starts — the window the buggy Flush returned into.
		sink := &laggySink{}
		a := NewAsync(sink, 1<<10)
		const events = 64
		for i := 0; i < events; i++ {
			a.Record(Event{Kind: KindSend})
		}
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			a.Close()
		}()
		// Flush may observe any interleaving of the close: before closed is
		// set, mid final-sweep, or after drainer exit. In every case, once
		// it returns, everything published before the Flush must be in the
		// sink or in a drop counter.
		a.Flush()
		if got := sink.n.Load() + a.Dropped() + a.DroppedClosed(); got != events {
			t.Fatalf("round %d: after Flush, delivered+dropped = %d, want %d (final sweep still running?)",
				round, got, events)
		}
		wg.Wait()
	}
}

// laggySink delays each delivery just enough to keep the ring non-empty
// while Close's final sweep runs.
type laggySink struct{ n atomic.Uint64 }

func (s *laggySink) Record(Event) {
	time.Sleep(10 * time.Microsecond)
	s.n.Add(1)
}

// TestAsyncFlushAfterClose: the documented Record→Close→Flush sequence
// observes a complete sink.
func TestAsyncFlushAfterClose(t *testing.T) {
	sink := &countSink{}
	a := NewAsync(sink, 64)
	for i := 0; i < 40; i++ {
		a.Record(Event{Kind: KindRecv})
	}
	a.Close()
	a.Flush()
	if got := sink.n.Load() + a.Dropped() + a.DroppedClosed(); got != 40 {
		t.Fatalf("after Close+Flush, delivered+dropped = %d, want 40", got)
	}
}
