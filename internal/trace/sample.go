package trace

import (
	"fmt"
	"math"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/scriptabs/goscript/internal/metrics"
)

// This file is the sampled-tracing layer: per-performance trace IDs, the
// Sampler that decides at initiation whether a performance is traced, and
// the bounded retained-context table of live traced performances. At
// millions of performances per second nobody can record everything;
// sampling keeps a representative, bounded slice of the traffic observable.
// The shape follows motan-go's trace exemplars (RandomTrace's 1/N
// probability decision, the MaxTraceSize-capped context table).

// TraceID identifies one performance's timeline across process boundaries:
// minted once at initiation (by whichever side samples the performance
// first), carried in every recorded event, and propagated through the SCRW
// ENROLL/OFFER-ACK exchange so a remote enrollment stitches into the same
// timeline. Zero means "not traced".
type TraceID uint64

// String renders the ID as 16 lowercase hex digits — the wire form. The
// zero ID renders as "".
func (t TraceID) String() string {
	if t == 0 {
		return ""
	}
	return fmt.Sprintf("%016x", uint64(t))
}

// ParseTraceID parses the wire form produced by String. An empty string is
// the zero ID (not traced); anything else must be valid hex.
func ParseTraceID(s string) (TraceID, error) {
	if s == "" {
		return 0, nil
	}
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("trace: bad trace id %q: %w", s, err)
	}
	return TraceID(v), nil
}

// Sampler decides, once per performance at initiation, whether the
// performance's events are recorded. A true verdict returns a freshly
// minted non-zero TraceID. Implementations must be safe for concurrent use.
type Sampler interface {
	Sample() (TraceID, bool)
}

// splitmix64 is the ID/decision generator: a single atomic add per draw,
// fully deterministic from the seed, with well-distributed output bits.
const splitmixGamma = 0x9e3779b97f4a7c15

func splitmix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// mintID derives a non-zero trace ID from a generator draw.
func mintID(x uint64) TraceID {
	id := TraceID(splitmix64(x + splitmixGamma))
	if id == 0 {
		id = 1
	}
	return id
}

// processIDState seeds NextID; the process start time keeps IDs distinct
// across processes so a host-minted and a client-minted ID do not collide.
var processIDState atomic.Uint64

func init() {
	processIDState.Store(uint64(time.Now().UnixNano()))
}

// NextID mints a process-unique non-zero trace ID. The core runtime uses it
// for performances that are traced without a sampler (record-everything
// tracing), so even unsampled setups get stitchable timelines.
func NextID() TraceID {
	return mintID(processIDState.Add(splitmixGamma))
}

// ProbabilitySampler samples each performance independently with a fixed
// probability — motan-go's RandomTrace (1 in RandomTraceBase) generalized to
// an arbitrary ratio. The decision sequence is a pure function of the seed:
// two samplers with equal seeds, drawn the same number of times, make
// identical decisions and mint identical IDs, which is what deterministic
// tests need. Sample is one atomic add plus a few multiplies.
type ProbabilitySampler struct {
	state     atomic.Uint64
	threshold uint64 // draw < threshold => sampled; MaxUint64 means always
	always    bool
}

// NewProbabilitySampler returns a sampler tracing the given fraction of
// performances (clamped to [0, 1]) with a deterministic seed.
func NewProbabilitySampler(fraction float64, seed uint64) *ProbabilitySampler {
	s := &ProbabilitySampler{}
	s.state.Store(seed)
	switch {
	case fraction <= 0:
		s.threshold = 0
	case fraction >= 1:
		s.threshold = math.MaxUint64
		s.always = true
	default:
		s.threshold = uint64(fraction * float64(math.MaxUint64))
	}
	return s
}

// Sample implements Sampler.
func (s *ProbabilitySampler) Sample() (TraceID, bool) {
	draw := splitmix64(s.state.Add(splitmixGamma))
	if !s.always && draw >= s.threshold {
		return 0, false
	}
	sampledTotal.Inc()
	return mintID(draw), true
}

// RateSampler admits at most perSec traced performances per second (token
// bucket with the given burst), whatever the offered load — the right
// sampler when traffic is spiky and a fixed probability would either drown
// the sink at peak or starve it at trough. The clock is injectable so tests
// are deterministic.
type RateSampler struct {
	mu     sync.Mutex
	perSec float64
	burst  float64
	tokens float64
	last   time.Time
	now    func() time.Time
	ids    uint64
}

// NewRateSampler returns a sampler admitting perSec traces per second with
// the given burst capacity (minimum 1); seed makes the minted IDs
// deterministic.
func NewRateSampler(perSec float64, burst int, seed uint64) *RateSampler {
	if burst < 1 {
		burst = 1
	}
	return &RateSampler{
		perSec: perSec,
		burst:  float64(burst),
		tokens: float64(burst),
		now:    time.Now,
		ids:    seed,
	}
}

// SetClock overrides the sampler's clock; call before first use (tests).
func (s *RateSampler) SetClock(now func() time.Time) {
	s.mu.Lock()
	s.now = now
	s.mu.Unlock()
}

// Sample implements Sampler.
func (s *RateSampler) Sample() (TraceID, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.now()
	if !s.last.IsZero() {
		s.tokens += t.Sub(s.last).Seconds() * s.perSec
		if s.tokens > s.burst {
			s.tokens = s.burst
		}
	}
	s.last = t
	if s.tokens < 1 {
		return 0, false
	}
	s.tokens--
	s.ids += splitmixGamma
	sampledTotal.Inc()
	return mintID(splitmix64(s.ids)), true
}

// AlwaysSample traces every performance (motan-go's AlwaysTrace), minting
// deterministic IDs from the seed. Useful in tests and for low-traffic
// instances where sampling would only lose information.
func AlwaysSample(seed uint64) Sampler { return NewProbabilitySampler(1, seed) }

// NeverSample traces nothing; Result trace IDs stay zero.
func NeverSample() Sampler { return NewProbabilitySampler(0, 0) }

// PerfContext is one live traced performance retained in a Table.
type PerfContext struct {
	ID          TraceID
	Script      string
	Performance int
}

// DefaultMaxLiveTraces is the retained-context cap used when a Table is
// created with a non-positive max.
const DefaultMaxLiveTraces = 1024

// Table is the bounded retained-context table: the set of currently-live
// traced performances, capped like motan-go's MaxTraceSize so a burst of
// sampled initiations cannot hold unbounded state. When the table is full,
// Add refuses (counted in trace_table_full_total) and the performance runs
// untraced; entries are removed when their performance ends or aborts.
type Table struct {
	mu   sync.Mutex
	max  int
	live map[TraceID]PerfContext
}

// NewTable returns a table retaining at most max live contexts
// (DefaultMaxLiveTraces when max <= 0).
func NewTable(max int) *Table {
	if max <= 0 {
		max = DefaultMaxLiveTraces
	}
	return &Table{max: max, live: make(map[TraceID]PerfContext)}
}

// Add retains pc and reports whether there was room; a false return means
// the cap is reached and the caller should run the performance untraced.
func (t *Table) Add(pc PerfContext) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.live[pc.ID]; ok {
		return true
	}
	if len(t.live) >= t.max {
		tableFullTotal.Inc()
		return false
	}
	t.live[pc.ID] = pc
	return true
}

// Remove releases the context for id (no-op when absent).
func (t *Table) Remove(id TraceID) {
	t.mu.Lock()
	delete(t.live, id)
	t.mu.Unlock()
}

// Len returns the number of live contexts.
func (t *Table) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.live)
}

// Contexts returns a snapshot of the live contexts (motan-go's
// GetTraceContexts), in no particular order.
func (t *Table) Contexts() []PerfContext {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]PerfContext, 0, len(t.live))
	for _, pc := range t.live {
		out = append(out, pc)
	}
	return out
}

// Always-on counters this package feeds.
var (
	sampledTotal   = metrics.Get(metrics.TraceSampled)
	tableFullTotal = metrics.Get(metrics.TraceTableFull)
)
