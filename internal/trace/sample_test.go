package trace

import (
	"strings"
	"testing"
	"time"
)

// TestProbabilitySamplerDeterministic: two samplers with the same seed make
// identical decisions and mint identical IDs — the contract deterministic
// tests and reproducible production sampling rely on.
func TestProbabilitySamplerDeterministic(t *testing.T) {
	a := NewProbabilitySampler(0.25, 42)
	b := NewProbabilitySampler(0.25, 42)
	sampled := 0
	for i := 0; i < 1000; i++ {
		idA, okA := a.Sample()
		idB, okB := b.Sample()
		if okA != okB || idA != idB {
			t.Fatalf("draw %d diverged: (%v,%v) vs (%v,%v)", i, idA, okA, idB, okB)
		}
		if okA {
			sampled++
			if idA == 0 {
				t.Fatalf("draw %d: sampled with zero trace ID", i)
			}
		}
	}
	if sampled < 150 || sampled > 350 {
		t.Fatalf("0.25 sampler admitted %d/1000 draws — outside sanity band", sampled)
	}
	// A different seed must produce a different decision/ID sequence.
	c := NewProbabilitySampler(0.25, 43)
	same := 0
	d := NewProbabilitySampler(0.25, 42)
	for i := 0; i < 1000; i++ {
		idC, _ := c.Sample()
		idD, _ := d.Sample()
		if idC == idD {
			same++
		}
	}
	if same == 1000 {
		t.Fatal("seeds 42 and 43 produced identical sequences")
	}
}

func TestProbabilitySamplerExtremes(t *testing.T) {
	always := AlwaysSample(7)
	for i := 0; i < 100; i++ {
		if id, ok := always.Sample(); !ok || id == 0 {
			t.Fatalf("AlwaysSample draw %d: (%v, %v)", i, id, ok)
		}
	}
	never := NeverSample()
	for i := 0; i < 100; i++ {
		if id, ok := never.Sample(); ok || id != 0 {
			t.Fatalf("NeverSample draw %d: (%v, %v)", i, id, ok)
		}
	}
}

// TestRateSampler drives the token bucket with an injected clock: burst is
// honored, then admissions track the refill rate exactly.
func TestRateSampler(t *testing.T) {
	s := NewRateSampler(10, 2, 99)
	now := time.Unix(1000, 0)
	s.SetClock(func() time.Time { return now })

	// Burst of 2 admits the first two draws; the third is refused.
	for i := 0; i < 2; i++ {
		if id, ok := s.Sample(); !ok || id == 0 {
			t.Fatalf("burst draw %d refused", i)
		}
	}
	if _, ok := s.Sample(); ok {
		t.Fatal("third draw admitted with an empty bucket")
	}
	// 100ms at 10/sec refills exactly one token.
	now = now.Add(100 * time.Millisecond)
	if _, ok := s.Sample(); !ok {
		t.Fatal("draw refused after refill")
	}
	if _, ok := s.Sample(); ok {
		t.Fatal("second draw admitted after single-token refill")
	}
	// Idle time cannot accumulate beyond the burst.
	now = now.Add(time.Hour)
	admitted := 0
	for i := 0; i < 10; i++ {
		if _, ok := s.Sample(); ok {
			admitted++
		}
	}
	if admitted != 2 {
		t.Fatalf("after long idle, admitted %d, want burst cap 2", admitted)
	}
}

func TestRateSamplerDeterministicIDs(t *testing.T) {
	mk := func() *RateSampler {
		s := NewRateSampler(1000, 10, 7)
		now := time.Unix(0, 0)
		s.SetClock(func() time.Time { return now })
		return s
	}
	a, b := mk(), mk()
	for i := 0; i < 10; i++ {
		idA, _ := a.Sample()
		idB, _ := b.Sample()
		if idA != idB || idA == 0 {
			t.Fatalf("draw %d: %v vs %v", i, idA, idB)
		}
	}
}

func TestTraceIDRoundTrip(t *testing.T) {
	for _, id := range []TraceID{0, 1, 0xdeadbeef, ^TraceID(0)} {
		got, err := ParseTraceID(id.String())
		if err != nil {
			t.Fatalf("ParseTraceID(%q): %v", id.String(), err)
		}
		if got != id {
			t.Fatalf("round trip %v -> %q -> %v", id, id.String(), got)
		}
	}
	if _, err := ParseTraceID("not-hex"); err == nil {
		t.Fatal("ParseTraceID accepted garbage")
	}
	if s := TraceID(0).String(); s != "" {
		t.Fatalf("zero ID renders %q, want empty", s)
	}
	if s := TraceID(0xab).String(); s != "00000000000000ab" {
		t.Fatalf("TraceID(0xab) = %q, want zero-padded 16 hex digits", s)
	}
}

func TestNextIDUnique(t *testing.T) {
	seen := make(map[TraceID]bool)
	for i := 0; i < 1000; i++ {
		id := NextID()
		if id == 0 {
			t.Fatal("NextID minted zero")
		}
		if seen[id] {
			t.Fatalf("NextID repeated %v", id)
		}
		seen[id] = true
	}
}

// TestTableCap: the retained-context table refuses additions beyond its cap
// (the performance then runs untraced), re-admits after Remove, and treats
// re-adding a live ID as success.
func TestTableCap(t *testing.T) {
	tbl := NewTable(2)
	if !tbl.Add(PerfContext{ID: 1, Script: "s", Performance: 1}) {
		t.Fatal("first Add refused")
	}
	if !tbl.Add(PerfContext{ID: 2, Script: "s", Performance: 2}) {
		t.Fatal("second Add refused")
	}
	if tbl.Add(PerfContext{ID: 3, Script: "s", Performance: 3}) {
		t.Fatal("Add beyond cap admitted")
	}
	if !tbl.Add(PerfContext{ID: 1, Script: "s", Performance: 1}) {
		t.Fatal("re-Add of live ID refused")
	}
	if got := tbl.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
	tbl.Remove(1)
	if !tbl.Add(PerfContext{ID: 3, Script: "s", Performance: 3}) {
		t.Fatal("Add after Remove refused")
	}
	ctxs := tbl.Contexts()
	if len(ctxs) != 2 {
		t.Fatalf("Contexts returned %d entries, want 2", len(ctxs))
	}
	ids := map[TraceID]bool{}
	for _, pc := range ctxs {
		ids[pc.ID] = true
	}
	if !ids[2] || !ids[3] {
		t.Fatalf("Contexts = %v, want IDs 2 and 3", ctxs)
	}
}

func TestEventJSONCarriesTraceID(t *testing.T) {
	evs := []Event{
		{Seq: 1, Kind: KindPerfStart, Script: "s", Performance: 1, TraceID: 0xfeed},
		{Seq: 2, Kind: KindPerfEnd, Script: "s", Performance: 1},
	}
	var sb strings.Builder
	if err := WriteJSON(&sb, evs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].TraceID != 0xfeed || got[1].TraceID != 0 {
		t.Fatalf("round-tripped events = %+v", got)
	}
}
