// Package trace records the observable events of script executions:
// enrollments, performance starts, inter-role communications, role
// completions, and releases. Tests use the log to assert the ordering
// properties the paper states (e.g. Figure 1's successive-activation rule),
// and cmd/figures renders Figure-1-style timelines from it.
//
// Events carry a sequence number assigned under a single lock, so the
// recorded order is a legal linearization of the execution.
package trace

import (
	"fmt"
	"strings"
	"sync"

	"github.com/scriptabs/goscript/internal/ids"
)

// Kind classifies an event.
type Kind int

// Event kinds, in rough lifecycle order.
const (
	// KindEnroll records that a process offered to enroll in a role.
	KindEnroll Kind = iota + 1
	// KindStart records that a role began executing in a performance.
	KindStart
	// KindSend records a completed synchronous send between two roles.
	KindSend
	// KindRecv records the matching receive.
	KindRecv
	// KindFinish records that a role's body returned.
	KindFinish
	// KindRelease records that the enrolling process was released from the
	// script (equal to KindFinish under immediate termination; after the
	// whole performance under delayed termination).
	KindRelease
	// KindAbsent records that a role was marked absent (will not be filled
	// in this performance) when the critical role set was covered.
	KindAbsent
	// KindPerfStart records the start of a performance.
	KindPerfStart
	// KindPerfEnd records the termination of a performance.
	KindPerfEnd
	// KindAbort records that a performance was aborted by the runtime
	// (deadline exceeded) instead of terminating normally; Role carries the
	// culprit role and Detail the reason. An aborted performance records no
	// KindPerfEnd: the abort is its final event, and roles of that
	// performance may still record late Finish/Release events while they
	// unwind.
	KindAbort
	// KindDrain records that an instance began draining: no new offers are
	// admitted, in-flight performances run to completion, then the instance
	// closes.
	KindDrain
)

var kindNames = map[Kind]string{
	KindEnroll:    "enroll",
	KindStart:     "start",
	KindSend:      "send",
	KindRecv:      "recv",
	KindFinish:    "finish",
	KindRelease:   "release",
	KindAbsent:    "absent",
	KindPerfStart: "perf-start",
	KindPerfEnd:   "perf-end",
	KindAbort:     "abort",
	KindDrain:     "drain",
}

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Event is one recorded occurrence.
type Event struct {
	// Seq is the global sequence number (1-based) in recording order.
	Seq int
	// Kind classifies the event.
	Kind Kind
	// Script is the script name.
	Script string
	// Performance is the 1-based performance number within the instance,
	// or 0 when the event precedes any performance (e.g. enrollment offers).
	Performance int
	// Role is the role involved, if any.
	Role ids.RoleRef
	// PID is the process involved, if any.
	PID ids.PID
	// Peer is the other role of a communication event.
	Peer ids.RoleRef
	// Detail is optional human-readable context (message tag, value, ...).
	Detail string
	// TraceID ties the event to a sampled performance's cross-process
	// timeline; zero when the performance is not traced (see sample.go).
	TraceID TraceID
}

// String renders the event compactly, e.g.
// "#12 perf=1 send broadcast sender->recipient[2] (x=42) by A".
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "#%d", e.Seq)
	if e.Performance > 0 {
		fmt.Fprintf(&b, " perf=%d", e.Performance)
	}
	fmt.Fprintf(&b, " %s %s", e.Kind, e.Script)
	if e.Role.Name != "" {
		b.WriteByte(' ')
		b.WriteString(e.Role.String())
	}
	if e.Peer.Name != "" {
		b.WriteString("->")
		b.WriteString(e.Peer.String())
	}
	if e.Detail != "" {
		fmt.Fprintf(&b, " (%s)", e.Detail)
	}
	if e.PID != ids.NoPID {
		fmt.Fprintf(&b, " by %s", e.PID)
	}
	if e.TraceID != 0 {
		fmt.Fprintf(&b, " trace=%s", e.TraceID)
	}
	return b.String()
}

// Tracer receives events. Implementations must be safe for concurrent use.
type Tracer interface {
	Record(e Event)
}

// Nop is a Tracer that discards everything.
type Nop struct{}

// Record implements Tracer by doing nothing.
func (Nop) Record(Event) {}

// Log is an in-memory Tracer that retains every event in order.
// The zero value is ready to use.
type Log struct {
	mu     sync.Mutex
	events []Event
	nextID int
}

var _ Tracer = (*Log)(nil)

// Record appends e to the log, assigning its sequence number.
func (l *Log) Record(e Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.nextID++
	e.Seq = l.nextID
	l.events = append(l.events, e)
}

// Events returns a copy of the recorded events in order.
func (l *Log) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, len(l.events))
	copy(out, l.events)
	return out
}

// Len returns the number of recorded events.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// Reset discards all recorded events and restarts sequence numbering.
func (l *Log) Reset() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = nil
	l.nextID = 0
}

// Filter returns the events for which keep returns true, preserving order.
func (l *Log) Filter(keep func(Event) bool) []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Event
	for _, e := range l.events {
		if keep(e) {
			out = append(out, e)
		}
	}
	return out
}

// First returns the first event matching keep, and whether one was found.
func (l *Log) First(keep func(Event) bool) (Event, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, e := range l.events {
		if keep(e) {
			return e, true
		}
	}
	return Event{}, false
}

// Before reports whether some event matching a was recorded strictly before
// some event matching b. It returns false if either never occurred.
func (l *Log) Before(a, b func(Event) bool) bool {
	ea, oka := l.First(a)
	eb, okb := l.First(b)
	return oka && okb && ea.Seq < eb.Seq
}

// ByKind is a convenience predicate constructor matching kind, role and pid;
// zero-valued fields match anything.
func ByKind(kind Kind, role ids.RoleRef, pid ids.PID) func(Event) bool {
	return func(e Event) bool {
		if e.Kind != kind {
			return false
		}
		if role.Name != "" && e.Role != role {
			return false
		}
		if pid != ids.NoPID && e.PID != pid {
			return false
		}
		return true
	}
}

// Timeline renders the log as a Figure-1-style narrative, one line per
// event, suitable for terminal output.
func (l *Log) Timeline() string {
	var b strings.Builder
	b.WriteString("time\n")
	for _, e := range l.Events() {
		b.WriteString("  ")
		b.WriteString(timelineLine(e))
		b.WriteByte('\n')
	}
	return b.String()
}

func timelineLine(e Event) string {
	switch e.Kind {
	case KindEnroll:
		return fmt.Sprintf("%s offers to enroll as %s", e.PID, e.Role)
	case KindStart:
		return fmt.Sprintf("%s begins role %s (performance %d)", e.PID, e.Role, e.Performance)
	case KindSend:
		return fmt.Sprintf("%s sends to %s%s", e.Role, e.Peer, parenDetail(e.Detail))
	case KindRecv:
		return fmt.Sprintf("%s receives from %s%s", e.Role, e.Peer, parenDetail(e.Detail))
	case KindFinish:
		return fmt.Sprintf("%s finishes its role as %s", e.PID, e.Role)
	case KindRelease:
		return fmt.Sprintf("%s is released from the script", e.PID)
	case KindAbsent:
		return fmt.Sprintf("role %s is marked absent for performance %d", e.Role, e.Performance)
	case KindPerfStart:
		return fmt.Sprintf("performance %d of %s begins", e.Performance, e.Script)
	case KindPerfEnd:
		return fmt.Sprintf("performance %d of %s ends", e.Performance, e.Script)
	case KindAbort:
		if e.Role.Name != "" {
			return fmt.Sprintf("performance %d of %s is aborted (culprit %s%s)",
				e.Performance, e.Script, e.Role, commaDetail(e.Detail))
		}
		return fmt.Sprintf("performance %d of %s is aborted%s",
			e.Performance, e.Script, parenDetail(e.Detail))
	case KindDrain:
		return fmt.Sprintf("instance of %s begins draining", e.Script)
	default:
		return e.String()
	}
}

func parenDetail(d string) string {
	if d == "" {
		return ""
	}
	return " (" + d + ")"
}

func commaDetail(d string) string {
	if d == "" {
		return ""
	}
	return ", " + d
}
