package trace

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Async decouples event recording from event storage: Record enqueues onto a
// fixed-size lock-free ring buffer (a bounded MPSC queue) and returns
// immediately, while a single background goroutine drains the ring into the
// wrapped sink tracer. The script runtime records events while holding the
// instance lock; wrapping a heavyweight sink (Log, a JSON writer, ...) in an
// Async keeps that critical section short — the enqueue is a couple of
// atomic operations and never blocks.
//
// Drop semantics: when the ring is full — or the tracer has been closed —
// Record drops the event and increments the drop counter instead of
// blocking the hot path or resurrecting a stopped drainer. Dropped
// events are simply missing from the sink; the events that are delivered
// preserve their recording order (the ring is FIFO). Tests that need a
// complete log should either use the sink directly (all Tracers remain
// synchronous and safe for concurrent use) or call Flush at quiescent points
// and check Dropped() == 0.
type Async struct {
	sink  Tracer
	mask  uint64
	cells []asyncCell

	enq     atomic.Uint64 // next enqueue position
	deq     atomic.Uint64 // next dequeue position (advanced only by drain)
	dropped atomic.Uint64

	// stopped and recorders fence Record against Close: Record registers in
	// recorders for its whole critical section and bails out (counting the
	// event as dropped) once stopped is set; Close sets stopped and then
	// waits for recorders to reach zero before running the final drain
	// sweep, so every enqueue the sweep must deliver has been published.
	stopped   atomic.Bool
	recorders atomic.Int64

	notify chan struct{} // producer -> drainer doorbell, capacity 1
	quit   chan struct{}

	mu     sync.Mutex
	cond   *sync.Cond // signalled by the drainer as deq advances
	closed bool
	wg     sync.WaitGroup
}

type asyncCell struct {
	seq atomic.Uint64
	ev  Event
}

var _ Tracer = (*Async)(nil)

// DefaultAsyncSize is the ring capacity used when NewAsync is given a
// non-positive size.
const DefaultAsyncSize = 1 << 14

// NewAsync wraps sink in an asynchronous ring-buffer tracer with the given
// capacity (rounded up to a power of two; <= 0 selects DefaultAsyncSize).
// Call Close to drain and stop the background goroutine.
func NewAsync(sink Tracer, size int) *Async {
	if sink == nil {
		sink = Nop{}
	}
	if size <= 0 {
		size = DefaultAsyncSize
	}
	capacity := 1
	for capacity < size {
		capacity <<= 1
	}
	a := &Async{
		sink:   sink,
		mask:   uint64(capacity - 1),
		cells:  make([]asyncCell, capacity),
		notify: make(chan struct{}, 1),
		quit:   make(chan struct{}),
	}
	for i := range a.cells {
		a.cells[i].seq.Store(uint64(i))
	}
	a.cond = sync.NewCond(&a.mu)
	a.wg.Add(1)
	go a.drain()
	return a
}

// Record enqueues e without blocking. If the ring is full, or the tracer
// has been closed, the event is dropped and counted in Dropped(). Safe for
// concurrent use by any number of recorders, including concurrently with
// Close: a Record that races Close either delivers its event to the sink
// before Close returns or counts it as dropped — it is never silently lost
// and never touches the ring after the final drain sweep.
func (a *Async) Record(e Event) {
	a.recorders.Add(1)
	defer a.recorders.Add(-1)
	if a.stopped.Load() {
		a.dropped.Add(1)
		return
	}
	for {
		pos := a.enq.Load()
		cell := &a.cells[pos&a.mask]
		switch dif := int64(cell.seq.Load() - pos); {
		case dif == 0: // cell free at this lap: try to claim it
			if a.enq.CompareAndSwap(pos, pos+1) {
				cell.ev = e
				cell.seq.Store(pos + 1) // publish to the drainer
				select {
				case a.notify <- struct{}{}:
				default:
				}
				return
			}
		case dif < 0: // cell still holds last lap's event: ring full, drop
			a.dropped.Add(1)
			return
		default:
			// Another producer claimed pos concurrently; reload and retry.
		}
	}
}

// drain is the single consumer: it moves published events into the sink.
func (a *Async) drain() {
	defer a.wg.Done()
	capacity := a.mask + 1
	for {
		moved := false
		for {
			pos := a.deq.Load()
			cell := &a.cells[pos&a.mask]
			if cell.seq.Load() != pos+1 {
				break // next event not published yet
			}
			e := cell.ev
			cell.ev = Event{}
			cell.seq.Store(pos + capacity) // recycle the cell for the next lap
			a.deq.Store(pos + 1)
			a.sink.Record(e)
			moved = true
		}
		if moved {
			a.mu.Lock()
			a.cond.Broadcast() // wake Flush waiters
			a.mu.Unlock()
		}
		select {
		case <-a.notify:
		case <-a.quit:
			// Final sweep: deliver anything published before Close.
			for {
				pos := a.deq.Load()
				cell := &a.cells[pos&a.mask]
				if cell.seq.Load() != pos+1 {
					break
				}
				e := cell.ev
				cell.ev = Event{}
				cell.seq.Store(pos + capacity)
				a.deq.Store(pos + 1)
				a.sink.Record(e)
			}
			a.mu.Lock()
			a.cond.Broadcast()
			a.mu.Unlock()
			return
		}
	}
}

// Flush blocks until every event enqueued before the call has been delivered
// to the sink (or the tracer is closed). It does not wait for events
// recorded concurrently with the flush.
func (a *Async) Flush() {
	target := a.enq.Load()
	a.mu.Lock()
	defer a.mu.Unlock()
	for a.deq.Load() < target && !a.closed {
		a.cond.Wait()
	}
}

// Dropped returns the number of events discarded because the ring was full.
func (a *Async) Dropped() uint64 { return a.dropped.Load() }

// Close drains outstanding events into the sink and stops the background
// goroutine. A Record concurrent with Close either gets its event delivered
// or counted as dropped; Records issued after Close returns are guaranteed
// no-ops counted in Dropped(). Close is idempotent.
func (a *Async) Close() {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return
	}
	a.closed = true
	a.mu.Unlock()
	// Fence out recorders, then wait for in-flight ones to publish: after
	// this loop no goroutine will touch the ring again, so the drainer's
	// final sweep observes every claimed cell fully published.
	a.stopped.Store(true)
	for a.recorders.Load() != 0 {
		runtime.Gosched()
	}
	close(a.quit)
	a.wg.Wait()
}
