package trace

import (
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/scriptabs/goscript/internal/metrics"
)

// Always-on drop accounting, split by cause (see Dropped / DroppedClosed).
var (
	droppedFullTotal   = metrics.Get(metrics.TraceDroppedFull)
	droppedClosedTotal = metrics.Get(metrics.TraceDroppedClosed)
)

// Async decouples event recording from event storage: Record enqueues onto a
// fixed-size lock-free ring buffer (a bounded MPSC queue) and returns
// immediately, while a single background goroutine drains the ring into the
// wrapped sink tracer. The script runtime records events while holding the
// instance lock; wrapping a heavyweight sink (Log, a JSON writer, ...) in an
// Async keeps that critical section short — the enqueue is a couple of
// atomic operations and never blocks.
//
// Drop semantics: when the ring is full — or the tracer has been closed —
// Record drops the event and increments the matching drop counter (Dropped
// for ring-full, DroppedClosed for post-Close) instead of
// blocking the hot path or resurrecting a stopped drainer. Dropped
// events are simply missing from the sink; the events that are delivered
// preserve their recording order (the ring is FIFO). Tests that need a
// complete log should either use the sink directly (all Tracers remain
// synchronous and safe for concurrent use) or call Flush at quiescent points
// and check Dropped() == 0.
type Async struct {
	sink  Tracer
	mask  uint64
	cells []asyncCell

	enq atomic.Uint64 // next enqueue position
	deq atomic.Uint64 // next dequeue position (advanced only by drain)
	// droppedFull counts ring-full drops, droppedClosed post-Close drops;
	// the split matters because the first means "size the ring up or slow
	// the producers" while the second is normal shutdown accounting.
	droppedFull   atomic.Uint64
	droppedClosed atomic.Uint64

	// stopped and recorders fence Record against Close: Record registers in
	// recorders for its whole critical section and bails out (counting the
	// event as dropped) once stopped is set; Close sets stopped and then
	// waits for recorders to reach zero before running the final drain
	// sweep, so every enqueue the sweep must deliver has been published.
	stopped   atomic.Bool
	recorders atomic.Int64

	notify chan struct{} // producer -> drainer doorbell, capacity 1
	quit   chan struct{}

	mu     sync.Mutex
	cond   *sync.Cond // signalled by the drainer as deq advances
	closed bool
	wg     sync.WaitGroup
}

// asyncCell holds the claimed event behind a pointer rather than inline:
// the cells array lives (and is scanned by every GC mark cycle) for the
// tracer's whole lifetime, so an idle ring's resident footprint is one word
// per cell instead of a full Event. The price is one heap copy per recorded
// event — paid only for events that pass sampling, where the sink write
// dominates anyway.
type asyncCell struct {
	seq atomic.Uint64
	ev  *Event
}

var _ Tracer = (*Async)(nil)

// DefaultAsyncSize is the ring capacity used when NewAsync is given a
// non-positive size. The cells hold events by value and live for the
// tracer's whole lifetime, so the GC scans the full ring every mark cycle
// whether or not anything was recorded — the default is sized to absorb
// bursts while keeping that always-on footprint (and a small-heap
// process's GC bill) negligible. Pass an explicit size to trade memory for
// burst headroom.
const DefaultAsyncSize = 1 << 10

// NewAsync wraps sink in an asynchronous ring-buffer tracer with the given
// capacity (rounded up to a power of two; <= 0 selects DefaultAsyncSize).
// Call Close to drain and stop the background goroutine.
func NewAsync(sink Tracer, size int) *Async {
	if sink == nil {
		sink = Nop{}
	}
	if size <= 0 {
		size = DefaultAsyncSize
	}
	capacity := 1
	for capacity < size {
		capacity <<= 1
	}
	a := &Async{
		sink:   sink,
		mask:   uint64(capacity - 1),
		cells:  make([]asyncCell, capacity),
		notify: make(chan struct{}, 1),
		quit:   make(chan struct{}),
	}
	for i := range a.cells {
		a.cells[i].seq.Store(uint64(i))
	}
	a.cond = sync.NewCond(&a.mu)
	a.wg.Add(1)
	go a.drain()
	return a
}

// Record enqueues e without blocking. If the ring is full the event is
// dropped and counted in Dropped(); if the tracer has been closed it is
// dropped and counted in DroppedClosed(). Safe for
// concurrent use by any number of recorders, including concurrently with
// Close: a Record that races Close either delivers its event to the sink
// before Close returns or counts it as dropped — it is never silently lost
// and never touches the ring after the final drain sweep.
func (a *Async) Record(e Event) {
	a.recorders.Add(1)
	defer a.recorders.Add(-1)
	if a.stopped.Load() {
		a.droppedClosed.Add(1)
		droppedClosedTotal.Inc()
		return
	}
	for {
		pos := a.enq.Load()
		cell := &a.cells[pos&a.mask]
		switch dif := int64(cell.seq.Load() - pos); {
		case dif == 0: // cell free at this lap: try to claim it
			if a.enq.CompareAndSwap(pos, pos+1) {
				cell.ev = &e
				cell.seq.Store(pos + 1) // publish to the drainer
				select {
				case a.notify <- struct{}{}:
				default:
				}
				return
			}
		case dif < 0: // cell still holds last lap's event: ring full, drop
			a.droppedFull.Add(1)
			droppedFullTotal.Inc()
			return
		default:
			// Another producer claimed pos concurrently; reload and retry.
		}
	}
}

// drain is the single consumer: it moves published events into the sink.
func (a *Async) drain() {
	defer a.wg.Done()
	capacity := a.mask + 1
	for {
		moved := false
		for {
			pos := a.deq.Load()
			cell := &a.cells[pos&a.mask]
			if cell.seq.Load() != pos+1 {
				break // next event not published yet
			}
			e := cell.ev
			cell.ev = nil
			cell.seq.Store(pos + capacity) // recycle the cell for the next lap
			a.deq.Store(pos + 1)
			a.sink.Record(*e)
			moved = true
		}
		if moved {
			a.mu.Lock()
			a.cond.Broadcast() // wake Flush waiters
			a.mu.Unlock()
		}
		select {
		case <-a.notify:
		case <-a.quit:
			// Final sweep: deliver anything published before Close.
			for {
				pos := a.deq.Load()
				cell := &a.cells[pos&a.mask]
				if cell.seq.Load() != pos+1 {
					break
				}
				e := cell.ev
				cell.ev = nil
				cell.seq.Store(pos + capacity)
				a.deq.Store(pos + 1)
				a.sink.Record(*e)
			}
			a.mu.Lock()
			a.cond.Broadcast()
			a.mu.Unlock()
			return
		}
	}
}

// Flush blocks until every event enqueued before the call has been delivered
// to the sink (or dropped). It does not wait for events recorded
// concurrently with the flush. A Flush racing (or following) Close waits for
// the drainer's final sweep to finish, so a Record→Close→Flush caller
// observes a complete sink: every event published before Close has reached
// the sink by the time Flush returns.
func (a *Async) Flush() {
	target := a.enq.Load()
	a.mu.Lock()
	for a.deq.Load() < target && !a.closed {
		a.cond.Wait()
	}
	closed := a.closed
	a.mu.Unlock()
	if closed {
		// The wait loop exited because Close began, but the drainer's final
		// sweep may still be delivering published events; returning now
		// would let the caller read the sink mid-sweep. Wait for drainer
		// exit — outside the mutex, which the sweep needs for its own
		// final broadcast.
		a.wg.Wait()
	}
}

// Dropped returns the number of events discarded because the ring was full.
// Events discarded because the tracer was already closed are counted
// separately in DroppedClosed.
func (a *Async) Dropped() uint64 { return a.droppedFull.Load() }

// DroppedClosed returns the number of events discarded because they were
// recorded after the tracer was closed.
func (a *Async) DroppedClosed() uint64 { return a.droppedClosed.Load() }

// Close drains outstanding events into the sink and stops the background
// goroutine. A Record concurrent with Close either gets its event delivered
// or counted as dropped; Records issued after Close returns are guaranteed
// no-ops counted in DroppedClosed(). Close is idempotent.
func (a *Async) Close() {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return
	}
	a.closed = true
	a.mu.Unlock()
	// Fence out recorders, then wait for in-flight ones to publish: after
	// this loop no goroutine will touch the ring again, so the drainer's
	// final sweep observes every claimed cell fully published.
	a.stopped.Store(true)
	for a.recorders.Load() != 0 {
		runtime.Gosched()
	}
	close(a.quit)
	a.wg.Wait()
}
