package adax

import (
	"strings"
	"testing"

	"github.com/scriptabs/goscript/internal/core"
	"github.com/scriptabs/goscript/internal/ids"
)

// TestHostCtxIdentity pins the adapter's view of identity: the body runs in
// the role task, so PID is the task's name (the enroller is invisible), the
// performance counter counts starts, and family extents are the declared
// ones.
func TestHostCtxIdentity(t *testing.T) {
	type ident struct {
		role   ids.RoleRef
		idx    int
		pid    ids.PID
		perf1  int
		fam    int
		term   bool
		filled bool
	}
	got := make(chan ident, 2)
	def, err := core.NewScript("who").
		Family("w", 2, func(rc core.Ctx) error {
			got <- ident{
				role:   rc.Role(),
				idx:    rc.Index(),
				pid:    rc.PID(),
				perf1:  rc.Performance(),
				fam:    rc.FamilySize("w"),
				term:   rc.Terminated(ids.Member("w", 1)),
				filled: rc.Filled(ids.Member("w", 1)),
			}
			if rc.Context() == nil {
				t.Error("nil context")
			}
			return nil
		}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	h, ctx := startHost(t, def)
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := h.Enroll(ctx, ids.Member("w", 2), nil); err != nil {
			t.Errorf("w2: %v", err)
		}
	}()
	if _, err := h.Enroll(ctx, ids.Member("w", 1), nil); err != nil {
		t.Fatal(err)
	}
	<-done
	for i := 0; i < 2; i++ {
		id := <-got
		if id.role.Name != "w" {
			t.Errorf("role = %v", id.role)
		}
		if id.idx != id.role.Index {
			t.Errorf("Index = %d, role %v", id.idx, id.role)
		}
		if !strings.HasPrefix(string(id.pid), "s_w[") {
			t.Errorf("PID = %q, want the role task's name", id.pid)
		}
		if id.perf1 != 1 {
			t.Errorf("performance = %d, want 1", id.perf1)
		}
		if id.fam != 2 {
			t.Errorf("FamilySize = %d, want 2", id.fam)
		}
		if id.term {
			t.Error("Terminated must be false under the Ada translation")
		}
		if !id.filled {
			t.Error("Filled must be true under the Ada translation")
		}
	}
}

// TestSendToUnknownRole covers the adapter's unknown-role error path.
func TestSendToUnknownRole(t *testing.T) {
	var sendErr error
	def, err := core.NewScript("u").
		Role("a", func(rc core.Ctx) error {
			sendErr = rc.Send(ids.Role("nope"), 1)
			return nil
		}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	h, ctx := startHost(t, def)
	if _, err := h.Enroll(ctx, ids.Role("a"), nil); err != nil {
		t.Fatal(err)
	}
	if sendErr == nil {
		t.Fatal("send to unknown role must fail")
	}
}

// TestRecvAnyOnAda covers the stash-backed RecvAny path.
func TestRecvAnyOnAda(t *testing.T) {
	def, err := core.NewScript("anyr").
		Role("hub", func(rc core.Ctx) error {
			froms := map[string]bool{}
			for i := 0; i < 2; i++ {
				from, tag, v, err := rc.RecvAny()
				if err != nil {
					return err
				}
				froms[from.String()+tag+v.(string)] = true
			}
			rc.SetResult(0, len(froms))
			return nil
		}).
		Family("src", 2, func(rc core.Ctx) error {
			return rc.SendTag(ids.Role("hub"), "m", "x")
		}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	h, ctx := startHost(t, def)
	for i := 1; i <= 2; i++ {
		i := i
		go func() { _, _ = h.Enroll(ctx, ids.Member("src", i), nil) }()
	}
	outs, err := h.Enroll(ctx, ids.Role("hub"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if outs[0] != 2 {
		t.Fatalf("hub saw %v distinct messages, want 2", outs[0])
	}
}

// TestSendOnlySelectDegeneratesToCall covers the Ada adapter's send-only
// select: with no accept branches, the first enabled call is performed (Ada
// cannot select between calls, so there is nothing to wait on).
func TestSendOnlySelectDegeneratesToCall(t *testing.T) {
	def, err := core.NewScript("sendsel").
		Role("a", func(rc core.Ctx) error {
			sel, err := rc.Select(
				core.SendTagTo(ids.Role("b"), "m", 1).When(false),
				core.SendTagTo(ids.Role("b"), "m", 2),
			)
			if err != nil {
				return err
			}
			if sel.Index != 1 {
				t.Errorf("selected branch %d, want 1 (first enabled)", sel.Index)
			}
			return nil
		}).
		Role("b", func(rc core.Ctx) error {
			v, err := rc.RecvTag(ids.Role("a"), "m")
			if err != nil {
				return err
			}
			rc.SetResult(0, v)
			return nil
		}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	h, ctx := startHost(t, def)
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := h.Enroll(ctx, ids.Role("a"), nil); err != nil {
			t.Errorf("a: %v", err)
		}
	}()
	outs, err := h.Enroll(ctx, ids.Role("b"), nil)
	<-done
	if err != nil || outs[0] != 2 {
		t.Fatalf("outs=%v err=%v", outs, err)
	}
}

// TestSelectDrainsStash covers the adapter's stash fast path: a message
// that arrives while waiting for something else must satisfy a later
// Select without another accept.
func TestSelectDrainsStash(t *testing.T) {
	def, err := core.NewScript("stashsel").
		Role("hub", func(rc core.Ctx) error {
			// First wait for "b"; "a"-tagged arrives first and is stashed.
			if _, err := rc.RecvTag(ids.Role("src"), "b"); err != nil {
				return err
			}
			sel, err := rc.Select(core.RecvTagFrom(ids.Role("src"), "a"))
			if err != nil {
				return err
			}
			rc.SetResult(0, sel.Val)
			return nil
		}).
		Role("src", func(rc core.Ctx) error {
			if err := rc.SendTag(ids.Role("hub"), "a", "stashed"); err != nil {
				return err
			}
			return rc.SendTag(ids.Role("hub"), "b", "direct")
		}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	h, ctx := startHost(t, def)
	go func() { _, _ = h.Enroll(ctx, ids.Role("src"), nil) }()
	outs, err := h.Enroll(ctx, ids.Role("hub"), nil)
	if err != nil || outs[0] != "stashed" {
		t.Fatalf("outs=%v err=%v", outs, err)
	}
}
