package adax

import (
	"context"
	"fmt"

	"github.com/scriptabs/goscript/internal/ada"
	"github.com/scriptabs/goscript/internal/core"
	"github.com/scriptabs/goscript/internal/ids"
)

// message is what travels through the msg entries: Ada acceptors do not
// learn the caller's identity, so the sending role names itself in the
// payload.
type message struct {
	from ids.RoleRef
	tag  string
	val  any
}

// hostCtx executes a role body inside its role task. Communications follow
// the paper's rewriting: a send becomes an entry call on the peer role's
// task; a receive becomes an accept on this task's msg entry. Because Ada
// accepts cannot filter by caller or constructor, mismatching messages are
// stashed and re-delivered to later receives — the acceptance still
// releases the sender, so cross-role synchronization is weaker than on the
// native runtime (a consequence of the translation, not a bug in it).
type hostCtx struct {
	core.ParamBag
	rt    *roleTask
	tk    *ada.Task
	stash []message
}

var _ core.Ctx = (*hostCtx)(nil)

func (rc *hostCtx) Context() context.Context { return rc.tk.Context() }
func (rc *hostCtx) Role() ids.RoleRef        { return rc.rt.role }
func (rc *hostCtx) Index() int               { return rc.rt.role.Index }

// PID returns the role task's name: the enroller's identity is not visible
// to the role body under this translation.
func (rc *hostCtx) PID() ids.PID { return ids.PID(rc.rt.task.Name()) }

// Performance returns the number of start rendezvous this role task has
// served.
func (rc *hostCtx) Performance() int {
	rc.rt.mu.Lock()
	defer rc.rt.mu.Unlock()
	return rc.rt.perf
}

func (rc *hostCtx) Send(to ids.RoleRef, v any) error { return rc.SendTag(to, "", v) }

func (rc *hostCtx) SendTag(to ids.RoleRef, tag string, v any) error {
	peer, ok := rc.rt.host.tasks[to]
	if !ok {
		return fmt.Errorf("%w: %s", core.ErrUnknownRole, to)
	}
	_, err := peer.msg.Call(rc.tk.Context(), message{from: rc.rt.role, tag: tag, val: v})
	if err != nil {
		return fmt.Errorf("adax: msg entry call on %s: %w", to, err)
	}
	return nil
}

// SendAll calls each target's msg entry in turn: Ada entry calls are
// inherently serial from one task, so there is no vectorized form.
func (rc *hostCtx) SendAll(tos []ids.RoleRef, v any) error {
	for _, to := range tos {
		if err := rc.SendTag(to, "", v); err != nil {
			return err
		}
	}
	return nil
}

// acceptOne accepts the next msg rendezvous on this role's task.
func (rc *hostCtx) acceptOne() (message, error) {
	var got message
	err := rc.tk.Accept(rc.rt.msg, func(ins []any) ([]any, error) {
		m, ok := ins[0].(message)
		if !ok {
			return nil, fmt.Errorf("adax: bad msg payload %T", ins[0])
		}
		got = m
		return nil, nil
	})
	if err != nil {
		return message{}, err
	}
	return got, nil
}

func (rc *hostCtx) Recv(from ids.RoleRef) (any, error) { return rc.RecvTag(from, "") }

func (rc *hostCtx) RecvTag(from ids.RoleRef, tag string) (any, error) {
	if _, ok := rc.rt.host.tasks[from]; !ok {
		return nil, fmt.Errorf("%w: %s", core.ErrUnknownRole, from) // would block forever
	}
	match := func(m message) bool { return m.from == from && m.tag == tag }
	for i, m := range rc.stash {
		if match(m) {
			rc.stash = append(rc.stash[:i], rc.stash[i+1:]...)
			return m.val, nil
		}
	}
	for {
		m, err := rc.acceptOne()
		if err != nil {
			return nil, err
		}
		if match(m) {
			return m.val, nil
		}
		rc.stash = append(rc.stash, m)
	}
}

func (rc *hostCtx) RecvAny() (ids.RoleRef, string, any, error) {
	if len(rc.stash) > 0 {
		m := rc.stash[0]
		rc.stash = rc.stash[1:]
		return m.from, m.tag, m.val, nil
	}
	m, err := rc.acceptOne()
	if err != nil {
		return ids.RoleRef{}, "", nil, err
	}
	return m.from, m.tag, m.val, nil
}

// Select supports receive-only alternatives (Ada's selective wait) and, as
// a degenerate case, a send-only list executed as a plain entry call on the
// first enabled branch. Mixing sends and receives fails with ErrUnsupported
// — Ada allows "selections between alternative entries … but not selections
// between alternative calls", which is exactly why Figure 8's broadcast is
// reversed.
func (rc *hostCtx) Select(branches ...core.SelectBranch) (core.Selected, error) {
	type recvBranch struct {
		orig    int
		peer    ids.RoleRef
		anyPeer bool
		tag     string
	}
	var (
		recvs     []recvBranch
		sendIdx   = -1
		haveSends bool
	)
	for i, b := range branches {
		if !b.Enabled() {
			continue
		}
		if b.IsSend() {
			haveSends = true
			if sendIdx < 0 {
				sendIdx = i
			}
			continue
		}
		peer, anyPeer := b.BranchPeer()
		if !anyPeer {
			if _, ok := rc.rt.host.tasks[peer]; !ok {
				return core.Selected{}, fmt.Errorf("%w: %s", core.ErrUnknownRole, peer)
			}
		}
		recvs = append(recvs, recvBranch{orig: i, peer: peer, anyPeer: anyPeer, tag: b.BranchTag()})
	}
	switch {
	case len(recvs) == 0 && !haveSends:
		return core.Selected{}, core.ErrNoBranches
	case len(recvs) > 0 && haveSends:
		return core.Selected{}, fmt.Errorf("%w: select mixing entry calls with accepts", ErrUnsupported)
	case haveSends:
		b := branches[sendIdx]
		peer, _ := b.BranchPeer()
		if err := rc.SendTag(peer, b.BranchTag(), b.BranchValue()); err != nil {
			return core.Selected{}, err
		}
		return core.Selected{Index: sendIdx, Peer: peer, Tag: b.BranchTag()}, nil
	}
	match := func(m message) (int, bool) {
		for _, rb := range recvs {
			if (rb.anyPeer || rb.peer == m.from) && rb.tag == m.tag {
				return rb.orig, true
			}
		}
		return 0, false
	}
	for i, m := range rc.stash {
		if idx, ok := match(m); ok {
			rc.stash = append(rc.stash[:i], rc.stash[i+1:]...)
			return core.Selected{Index: idx, Peer: m.from, Tag: m.tag, Val: m.val}, nil
		}
	}
	for {
		m, err := rc.acceptOne()
		if err != nil {
			return core.Selected{}, err
		}
		if idx, ok := match(m); ok {
			return core.Selected{Index: idx, Peer: m.from, Tag: m.tag, Val: m.val}, nil
		}
		rc.stash = append(rc.stash, m)
	}
}

// Terminated always reports false: the translation has no critical role
// sets, so every role is assumed enrolled.
func (rc *hostCtx) Terminated(ids.RoleRef) bool { return false }

// Filled always reports true under the same assumption.
func (rc *hostCtx) Filled(ids.RoleRef) bool { return true }

// FamilySize returns the declared extent of a fixed family.
func (rc *hostCtx) FamilySize(name string) int { return rc.rt.host.def.FamilyExtent(name) }
