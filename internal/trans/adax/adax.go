// Package adax implements the paper's translation of scripts into Ada
// (Section IV, Figures 9–11), as a runtime-level construction:
//
//   - each role r_j becomes a task ŝ_r_j with start and stop entries; the
//     enrollment "ENROLL IN s AS r(in, out)" is replaced by the entry-call
//     pair ŝ_r.start(in); ŝ_r.stop(out);
//   - a supervisor task with start/stop entry families (indexed by role
//     number) coordinates performances, enforcing successive activations;
//   - role bodies run inside the role tasks, with inter-role communications
//     becoming entry calls on the peer role tasks ("calls to role entry
//     rj.x(y,z) become calls to task entry ŝ_rj.x(y,z)").
//
// The paper names the costs of this translation, which this package
// reproduces measurably: the process count grows from n to n+m+1, the role
// execution moves off the enrolling processor (here: off the enrolling
// goroutine), and the role tasks loop forever — here bounded by Ada's
// terminate alternative so programs can still shut down collectively.
//
// Ada restrictions are honoured: "selections between alternative entries
// are allowed, but not selections between alternative calls", so a script
// Select mixing send branches with receive branches fails with
// ErrUnsupported (the reason Figure 8's broadcast is reversed).
package adax

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"github.com/scriptabs/goscript/internal/ada"
	"github.com/scriptabs/goscript/internal/core"
	"github.com/scriptabs/goscript/internal/ids"
)

// Errors reported by the translation.
var (
	// ErrUnsupported reports a script feature the Ada translation cannot
	// express.
	ErrUnsupported = errors.New("adax: feature not supported by the Ada translation")
	// ErrNotStarted reports an enrollment before Start.
	ErrNotStarted = errors.New("adax: host not started")
)

// Host is the Ada-side embedding of one script instance: the supervisor
// task plus one task per role (m+1 tasks).
type Host struct {
	def   core.Definition
	prog  *ada.Program
	tasks map[ids.RoleRef]*roleTask
	roles []ids.RoleRef

	mu      sync.Mutex
	caller  *ada.Caller
	started bool
}

type roleTask struct {
	host  *Host
	role  ids.RoleRef
	num   int // 1-based role number j
	task  *ada.Task
	start *ada.Entry
	stop  *ada.Entry
	msg   *ada.Entry

	mu   sync.Mutex
	perf int
}

// New builds the translated program for def: a supervisor task with
// start/stop entry families and one task per role. Open-ended families are
// rejected.
func New(def core.Definition) (*Host, error) {
	if def.HasOpenFamilies() {
		return nil, fmt.Errorf("%w: open-ended families", ErrUnsupported)
	}
	h := &Host{
		def:   def,
		prog:  ada.NewProgram(),
		tasks: make(map[ids.RoleRef]*roleTask),
		roles: def.Roles(),
	}
	m := len(h.roles)

	sup := h.prog.Task("sup_"+def.Name(), nil)
	supStart := sup.EntryFamily("start", m)
	supStop := sup.EntryFamily("stop", m)
	sup.SetBody(func(tk *ada.Task) error {
		started := make([]bool, m+1)
		stopped := make([]bool, m+1)
		reset := func() {
			for j := 1; j <= m; j++ {
				if !started[j] || !stopped[j] {
					return
				}
			}
			for j := 1; j <= m; j++ {
				started[j], stopped[j] = false, false
			}
		}
		return tk.Serve(func() []ada.Alt {
			alts := make([]ada.Alt, 0, 2*m+1)
			for j := 1; j <= m; j++ {
				j := j
				alts = append(alts,
					ada.Accepting(supStart[j-1], func([]any) ([]any, error) {
						started[j] = true
						return nil, nil
					}).When(!started[j]),
					ada.Accepting(supStop[j-1], func([]any) ([]any, error) {
						stopped[j] = true
						reset()
						return nil, nil
					}).When(started[j] && !stopped[j]),
				)
			}
			return append(alts, ada.Terminate())
		})
	})

	for j, role := range h.roles {
		j, role := j+1, role
		rt := &roleTask{host: h, role: role, num: j}
		task := h.prog.Task("s_"+role.String(), nil)
		rt.task = task
		rt.start = task.Entry("start")
		rt.stop = task.Entry("stop")
		rt.msg = task.Entry("msg")
		body, err := def.Body(role)
		if err != nil {
			return nil, err
		}
		task.SetBody(func(tk *ada.Task) error {
			for {
				var ins []any
				idx, err := tk.Select(
					ada.Accepting(rt.start, func(callIns []any) ([]any, error) {
						ins = callIns
						return nil, nil
					}),
					ada.Terminate(),
				)
				if err != nil {
					if errors.Is(err, ada.ErrTerminated) {
						return nil
					}
					return err
				}
				if idx != 0 {
					return nil
				}
				if _, err := supStart[j-1].Call(tk.Context()); err != nil {
					return fmt.Errorf("supervisor start(%d): %w", j, err)
				}
				rt.mu.Lock()
				rt.perf++
				rt.mu.Unlock()
				rc := &hostCtx{ParamBag: core.ParamBag{In: ins}, rt: rt, tk: tk}
				bodyErr := runBody(body, rc)
				if _, err := supStop[j-1].Call(tk.Context()); err != nil {
					return fmt.Errorf("supervisor stop(%d): %w", j, err)
				}
				if bodyErr != nil {
					bodyErr = &core.RoleError{Script: def.Name(), Role: role, Err: bodyErr}
				}
				// The stop rendezvous returns the out parameters (and the
				// body's error, which Ada would raise in both tasks).
				_ = tk.Accept(rt.stop, func([]any) ([]any, error) {
					return rc.Out, bodyErr
				})
			}
		})
		h.tasks[role] = rt
	}
	return h, nil
}

func runBody(body core.RoleBody, rc core.Ctx) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("role body panicked: %v", r)
		}
	}()
	return body(rc)
}

// TaskCount returns the number of tasks the translation created (m+1): the
// growth the paper calls out ("the number of processes grows from n … to
// n+m+1 in the translation").
func (h *Host) TaskCount() int { return len(h.roles) + 1 }

// Start activates the translated program. The host holds an external-caller
// registration so the tasks do not terminate collectively while enrollments
// may still arrive; Shutdown releases it.
func (h *Host) Start(ctx context.Context) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.started {
		return errors.New("adax: host already started")
	}
	h.caller = h.prog.ExternalCaller()
	if err := h.prog.Start(ctx); err != nil {
		h.caller.Done()
		return err
	}
	h.started = true
	return nil
}

// Shutdown lets the tasks terminate collectively and waits for them.
func (h *Host) Shutdown() error {
	h.mu.Lock()
	caller, started := h.caller, h.started
	h.mu.Unlock()
	if !started {
		return ErrNotStarted
	}
	caller.Done()
	return h.prog.Wait()
}

// Enroll performs the translated enrollment: the entry-call pair
// start(args); stop() on the role's task. It blocks until the role body has
// run inside the role task — note that, unlike the native runtime, the body
// does NOT run in the caller's goroutine (the paper: "this growth makes it
// difficult to associate the execution of a role with the same processor
// that enrolls in the script").
func (h *Host) Enroll(ctx context.Context, role ids.RoleRef, args []any) ([]any, error) {
	h.mu.Lock()
	started := h.started
	h.mu.Unlock()
	if !started {
		return nil, ErrNotStarted
	}
	rt, ok := h.tasks[role]
	if !ok {
		return nil, fmt.Errorf("%w: %s", core.ErrUnknownRole, role)
	}
	if _, err := rt.start.Call(ctx, args...); err != nil {
		return nil, fmt.Errorf("adax: start entry: %w", err)
	}
	outs, err := rt.stop.Call(ctx)
	return outs, err
}
