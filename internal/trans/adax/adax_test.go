package adax

import (
	"context"
	"errors"

	"sync"
	"testing"
	"time"

	"github.com/scriptabs/goscript/internal/core"
	"github.com/scriptabs/goscript/internal/ids"
	"github.com/scriptabs/goscript/internal/patterns"
)

func startHost(t *testing.T, def core.Definition) (*Host, context.Context) {
	t.Helper()
	h, err := New(def)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	t.Cleanup(cancel)
	if err := h.Start(ctx); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := h.Shutdown(); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return h, ctx
}

func TestTranslatedStarBroadcast(t *testing.T) {
	const n = 5
	h, ctx := startHost(t, patterns.StarBroadcast(n))

	var wg sync.WaitGroup
	results := make([]any, n+1)
	errs := make(chan error, n+1)
	for i := 1; i <= n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			outs, err := h.Enroll(ctx, ids.Member(patterns.RoleRecipient, i), nil)
			if err == nil {
				results[i] = outs[0]
			}
			errs <- err
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err := h.Enroll(ctx, ids.Role(patterns.RoleSender), []any{"ada-x"})
		errs <- err
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= n; i++ {
		if results[i] != "ada-x" {
			t.Errorf("recipient %d got %v", i, results[i])
		}
	}
}

func TestTaskCountIsMPlusOne(t *testing.T) {
	h, err := New(patterns.StarBroadcast(4))
	if err != nil {
		t.Fatal(err)
	}
	if got := h.TaskCount(); got != 6 { // sender + 4 recipients + supervisor
		t.Fatalf("TaskCount = %d, want 6", got)
	}
}

func TestSuccessivePerformances(t *testing.T) {
	const n = 2
	h, ctx := startHost(t, patterns.StarBroadcast(n))

	recvDone := make(chan error, n)
	var mu sync.Mutex
	rounds := map[int][]any{}
	for i := 1; i <= n; i++ {
		i := i
		go func() {
			for round := 0; round < 2; round++ {
				outs, err := h.Enroll(ctx, ids.Member(patterns.RoleRecipient, i), nil)
				if err != nil {
					recvDone <- err
					return
				}
				mu.Lock()
				rounds[round] = append(rounds[round], outs[0])
				mu.Unlock()
			}
			recvDone <- nil
		}()
	}
	for _, x := range []any{"first", "second"} {
		if _, err := h.Enroll(ctx, ids.Role(patterns.RoleSender), []any{x}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if err := <-recvDone; err != nil {
			t.Fatal(err)
		}
	}
	for round, want := range map[int]any{0: "first", 1: "second"} {
		for _, v := range rounds[round] {
			if v != want {
				t.Errorf("round %d delivered %v, want %v", round, rounds[round], want)
			}
		}
	}
}

func TestEnrollmentQueuesFIFOOnRoleEntry(t *testing.T) {
	// Two processes contend for the only role; Ada entry queues are FIFO,
	// so the first caller is served in performance 1.
	def, err := core.NewScript("solo").
		Role("only", func(rc core.Ctx) error {
			rc.SetResult(0, rc.Performance())
			return nil
		}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	h, ctx := startHost(t, def)
	outs1, err := h.Enroll(ctx, ids.Role("only"), nil)
	if err != nil {
		t.Fatal(err)
	}
	outs2, err := h.Enroll(ctx, ids.Role("only"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if outs1[0] != 1 || outs2[0] != 2 {
		t.Fatalf("performances = %v, %v; want 1, 2", outs1[0], outs2[0])
	}
}

func TestRoleBodyErrorPropagatesToEnroller(t *testing.T) {
	boom := errors.New("boom")
	def, err := core.NewScript("failing").
		Role("a", func(rc core.Ctx) error { return boom }).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	h, ctx := startHost(t, def)
	_, enrollErr := h.Enroll(ctx, ids.Role("a"), nil)
	var re *core.RoleError
	if !errors.As(enrollErr, &re) || !errors.Is(enrollErr, boom) {
		t.Fatalf("err = %v, want RoleError wrapping boom", enrollErr)
	}
	// The role task must survive for the next performance.
	if _, err := h.Enroll(ctx, ids.Role("a"), nil); !errors.Is(err, boom) {
		t.Fatalf("second performance: %v", err)
	}
}

func TestMixedSelectRejected(t *testing.T) {
	var selErr error
	def, err := core.NewScript("mixed").
		Role("a", func(rc core.Ctx) error {
			_, selErr = rc.Select(
				core.SendTo(ids.Role("b"), 1),
				core.RecvFrom(ids.Role("b")),
			)
			// Unblock b regardless.
			return rc.Send(ids.Role("b"), 2)
		}).
		Role("b", func(rc core.Ctx) error {
			_, err := rc.Recv(ids.Role("a"))
			return err
		}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	h, ctx := startHost(t, def)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); _, _ = h.Enroll(ctx, ids.Role("a"), nil) }()
	go func() { defer wg.Done(); _, _ = h.Enroll(ctx, ids.Role("b"), nil) }()
	wg.Wait()
	if !errors.Is(selErr, ErrUnsupported) {
		t.Fatalf("select err = %v, want ErrUnsupported", selErr)
	}
}

func TestRecvOnlySelectWithStash(t *testing.T) {
	// The hub receives tagged messages out of order: a "late"-tagged
	// message arrives while the hub waits for "early"; it must be stashed
	// and delivered to the later receive.
	def, err := core.NewScript("stash").
		Role("hub", func(rc core.Ctx) error {
			early, err := rc.RecvTag(ids.Role("src"), "early")
			if err != nil {
				return err
			}
			late, err := rc.RecvTag(ids.Role("src"), "late")
			if err != nil {
				return err
			}
			rc.Return(early, late)
			return nil
		}).
		Role("src", func(rc core.Ctx) error {
			if err := rc.SendTag(ids.Role("hub"), "late", "L"); err != nil {
				return err
			}
			return rc.SendTag(ids.Role("hub"), "early", "E")
		}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	h, ctx := startHost(t, def)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); _, _ = h.Enroll(ctx, ids.Role("src"), nil) }()
	outs, err := h.Enroll(ctx, ids.Role("hub"), nil)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if outs[0] != "E" || outs[1] != "L" {
		t.Fatalf("outs = %v, want [E L]", outs)
	}
}

func TestReverseBroadcastFigure8Shape(t *testing.T) {
	// Figure 8's script shape: recipients call the sender (RecvAny serves
	// them in arrival order), so the sender needs no recipient names.
	const n = 4
	def, err := core.NewScript("reverse").
		Role("sender", func(rc core.Ctx) error {
			for completed := 0; completed < n; completed++ {
				from, _, _, err := rc.RecvAny()
				if err != nil {
					return err
				}
				if err := rc.SendTag(from, "data", rc.Arg(0)); err != nil {
					return err
				}
			}
			return nil
		}).
		Family("r", n, func(rc core.Ctx) error {
			if err := rc.SendTag(ids.Role("sender"), "request", nil); err != nil {
				return err
			}
			v, err := rc.RecvTag(ids.Role("sender"), "data")
			if err != nil {
				return err
			}
			rc.SetResult(0, v)
			return nil
		}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	h, ctx := startHost(t, def)
	var wg sync.WaitGroup
	results := make([]any, n+1)
	for i := 1; i <= n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			outs, err := h.Enroll(ctx, ids.Member("r", i), nil)
			if err != nil {
				t.Errorf("recipient %d: %v", i, err)
				return
			}
			results[i] = outs[0]
		}()
	}
	if _, err := h.Enroll(ctx, ids.Role("sender"), []any{"rev"}); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i := 1; i <= n; i++ {
		if results[i] != "rev" {
			t.Errorf("recipient %d got %v", i, results[i])
		}
	}
}

func TestOpenFamilyRejected(t *testing.T) {
	def, err := core.NewScript("open").
		Role("hub", func(rc core.Ctx) error { return nil }).
		OpenFamily("w", func(rc core.Ctx) error { return nil }).
		CriticalSet(ids.Role("hub")).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(def); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("New = %v, want ErrUnsupported", err)
	}
}

func TestEnrollBeforeStart(t *testing.T) {
	h, err := New(patterns.StarBroadcast(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Enroll(context.Background(), ids.Role(patterns.RoleSender), nil); !errors.Is(err, ErrNotStarted) {
		t.Fatalf("err = %v, want ErrNotStarted", err)
	}
	if err := h.Shutdown(); !errors.Is(err, ErrNotStarted) {
		t.Fatalf("Shutdown = %v, want ErrNotStarted", err)
	}
	// Start it properly so the declared tasks are not leaked goroutines.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := h.Start(ctx); err != nil {
		t.Fatal(err)
	}
	if err := h.Start(ctx); err == nil {
		t.Fatal("double start must fail")
	}
	if err := h.Shutdown(); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownRole(t *testing.T) {
	h, ctx := startHost(t, patterns.StarBroadcast(1))
	if _, err := h.Enroll(ctx, ids.Role("ghost"), nil); !errors.Is(err, core.ErrUnknownRole) {
		t.Fatalf("err = %v, want ErrUnknownRole", err)
	}
}

func TestPipelineBroadcastOnAda(t *testing.T) {
	const n = 3
	h, ctx := startHost(t, patterns.PipelineBroadcast(n))
	var wg sync.WaitGroup
	results := make([]any, n+1)
	for i := 1; i <= n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			outs, err := h.Enroll(ctx, ids.Member(patterns.RoleRecipient, i), nil)
			if err != nil {
				t.Errorf("recipient %d: %v", i, err)
				return
			}
			results[i] = outs[0]
		}()
	}
	if _, err := h.Enroll(ctx, ids.Role(patterns.RoleSender), []any{7}); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i := 1; i <= n; i++ {
		if results[i] != 7 {
			t.Errorf("recipient %d got %v", i, results[i])
		}
	}
}
