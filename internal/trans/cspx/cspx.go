// Package cspx implements the paper's translation of scripts into CSP
// (Section IV, "Translation into CSP"), as a runtime-level construction:
//
//   - each script instance s gets a supervisor process p_s (Figure 7) that
//     coordinates enrollments with start_s / end_s messages and enforces
//     the successive-activations rule with its ready/done arrays;
//   - an enrollment is replaced inline by: p_s!start_s(), the role's body
//     with role names bound to process names and every communication tagged
//     with a unique script tag, then p_s!end_s();
//   - the supervisor receives start_s/end_s from *any* process ("the script
//     supervisor must address all other processes"), which uses the
//     extended naming convention of Francez [2], available on the CSP
//     substrate as OnAny.
//
// As in the paper, this is an expressibility proof, not a recommended
// implementation: it is centralized, supports neither critical role sets
// nor open-ended families, and uses the restricted named-enrollment policy
// (every role a body communicates with must be bound to a process name).
//
// One refinement over the figure: the start_s/end_s messages carry the
// role's slot index (distinct tags per role). Figure 7's supervisor counts
// slots without knowing which role takes one, which deadlocks when a fast
// process re-enrolls for the next performance before a slow process has
// claimed its slot for the current one — the re-enrollment consumes the
// slow role's slot, the performance can never complete, and the supervisor
// never resets. Naming the slot is information the translation already has
// (it inlines a specific role's body), so the refinement stays within the
// paper's scheme.
package cspx

import (
	"errors"
	"fmt"

	"github.com/scriptabs/goscript/internal/core"
	"github.com/scriptabs/goscript/internal/csp"
	"github.com/scriptabs/goscript/internal/ids"
)

// Errors reported by the translation.
var (
	// ErrUnsupported reports a script feature the paper's CSP translation
	// cannot express (open-ended families, critical role sets, nested
	// enrollment, Terminated).
	ErrUnsupported = errors.New("cspx: feature not supported by the CSP translation")
	// ErrUnboundRole reports a communication with a role the enrollment's
	// binding does not name — the translation requires full naming.
	ErrUnboundRole = errors.New("cspx: role not bound to a process name")
)

// Host is the CSP-side embedding of one script instance.
type Host struct {
	def      core.Definition
	roles    []ids.RoleRef
	roleSlot map[ids.RoleRef]int // role -> 0-based supervisor slot
	supName  string
	tagStart string // per-slot prefix: "start_<script>:<k>"
	tagEnd   string
	tagComm  string // prefix for body communications
}

// New prepares the translation of def. Scripts with open-ended families or
// critical role sets are rejected (the paper's translation predates both).
func New(def core.Definition) (*Host, error) {
	if def.HasOpenFamilies() {
		return nil, fmt.Errorf("%w: open-ended families", ErrUnsupported)
	}
	name := def.Name()
	h := &Host{
		def:      def,
		roles:    def.Roles(),
		roleSlot: make(map[ids.RoleRef]int),
		supName:  "p_" + name,
		// "unique, new message tags, which are assumed not to occur
		// anywhere in the original program"
		tagStart: "start_" + name + ":",
		tagEnd:   "end_" + name + ":",
		tagComm:  "s_" + name + ":",
	}
	for k, r := range h.roles {
		h.roleSlot[r] = k
	}
	return h, nil
}

// startTag and endTag name slot k's coordination messages.
func (h *Host) startTag(k int) csp.Tag { return csp.Tag(fmt.Sprintf("%s%d", h.tagStart, k)) }
func (h *Host) endTag(k int) csp.Tag   { return csp.Tag(fmt.Sprintf("%s%d", h.tagEnd, k)) }

// SupervisorName returns the name of the supervisor process p_s.
func (h *Host) SupervisorName() string { return h.supName }

// AddSupervisor declares p_s (Figure 7) on the parallel command.
//
// The paper's supervisor loops forever; because it accepts start_s/end_s
// from any process, the distributed termination convention cannot end it
// (the same "terminating program into a non-terminating one" consequence
// the paper notes for the Ada translation). performances therefore bounds
// the supervisor: it exits after that many complete performances; pass 0
// for the paper-faithful endless loop (the caller must then cancel the
// system's context).
func (h *Host) AddSupervisor(sys *csp.System, performances int) *csp.System {
	m := len(h.roles)
	return sys.Process(h.supName, func(p *csp.Proc) error {
		completed := 0
		ready := make([]bool, m) // ready[k]: role slot k free
		done := make([]bool, m)  // done[k]: role slot k finished
		for i := range ready {
			ready[i] = true
		}
		reset := func() {
			allDone := true
			for _, d := range done {
				if !d {
					allDone = false
					break
				}
			}
			if allDone {
				completed++
				for i := range ready {
					ready[i], done[i] = true, false
				}
			}
		}
		return p.Rep(func() []csp.Guard {
			if performances > 0 && completed >= performances {
				return nil // all guards false: the repetitive command exits
			}
			guards := make([]csp.Guard, 0, 2*m)
			for k := 0; k < m; k++ {
				k := k
				guards = append(guards,
					csp.OnAny(h.startTag(k), func(any) error {
						ready[k] = false
						return nil
					}).When(ready[k]),
					csp.OnAny(h.endTag(k), func(any) error {
						done[k] = true
						// "∧(k=1,m) done[k] → ready := m'true; done := m'false"
						reset()
						return nil
					}).When(!ready[k] && !done[k]),
				)
			}
			return guards
		})
	})
}

// Enroll performs the translated enrollment inside process p: it sends
// start_s to the supervisor, runs the role body inline with the given
// role-to-process binding, sends end_s, and returns the body's result
// parameters. The binding must name a process for every role the body
// communicates with, including the enrolling process's own role.
func (h *Host) Enroll(p *csp.Proc, role ids.RoleRef, binding map[ids.RoleRef]string, args []any) ([]any, error) {
	body, err := h.def.Body(role)
	if err != nil {
		return nil, err
	}
	slot, ok := h.roleSlot[role]
	if !ok {
		return nil, fmt.Errorf("%w: %s", core.ErrUnknownRole, role)
	}
	if err := p.SendTagged(h.supName, h.startTag(slot), nil); err != nil {
		return nil, fmt.Errorf("cspx: start_s: %w", err)
	}
	rc := &hostCtx{
		ParamBag: core.ParamBag{In: args},
		host:     h,
		proc:     p,
		role:     role,
		binding:  binding,
		reverse:  reverseBinding(binding),
	}
	bodyErr := body(rc)
	if err := p.SendTagged(h.supName, h.endTag(slot), nil); err != nil {
		return nil, fmt.Errorf("cspx: end_s: %w", err)
	}
	if bodyErr != nil {
		return rc.Out, &core.RoleError{Script: h.def.Name(), Role: role, Err: bodyErr}
	}
	return rc.Out, nil
}

func reverseBinding(binding map[ids.RoleRef]string) map[string]ids.RoleRef {
	rev := make(map[string]ids.RoleRef, len(binding))
	for r, pname := range binding {
		rev[pname] = r
	}
	return rev
}
