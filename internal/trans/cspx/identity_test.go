package cspx

import (
	"context"
	"testing"
	"time"

	"github.com/scriptabs/goscript/internal/core"
	"github.com/scriptabs/goscript/internal/csp"
	"github.com/scriptabs/goscript/internal/ids"
)

// TestHostCtxIdentity pins the CSP adapter's identity view: PID is the
// enrolling process's name (the translation inlines the body in the
// process), Performance is unobservable (0), and family extents are the
// declared ones. It also exercises RecvAny's reverse binding and the
// anyPeer select path.
func TestHostCtxIdentity(t *testing.T) {
	type ident struct {
		role    ids.RoleRef
		idx     int
		pid     ids.PID
		perf    int
		fam     int
		term    bool
		filled  bool
		anyFrom ids.RoleRef
		anyVal  any
		selVal  any
	}
	got := make(chan ident, 1)

	def, err := core.NewScript("who").
		Family("w", 2, func(rc core.Ctx) error {
			if rc.Index() == 2 {
				if err := rc.SendTag(ids.Member("w", 1), "m", "first"); err != nil {
					return err
				}
				return rc.SendTag(ids.Member("w", 1), "m", "second")
			}
			from, _, v, err := rc.RecvAny()
			if err != nil {
				return err
			}
			sel, err := rc.Select(core.RecvTagFrom(ids.Member("w", 2), "m"))
			if err != nil {
				return err
			}
			got <- ident{
				role: rc.Role(), idx: rc.Index(), pid: rc.PID(),
				perf: rc.Performance(), fam: rc.FamilySize("w"),
				term: rc.Terminated(ids.Member("w", 2)), filled: rc.Filled(ids.Member("w", 2)),
				anyFrom: from, anyVal: v, selVal: sel.Val,
			}
			if rc.Context() == nil {
				t.Error("nil context")
			}
			return nil
		}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	h, err := New(def)
	if err != nil {
		t.Fatal(err)
	}
	binding := map[ids.RoleRef]string{
		ids.Member("w", 1): "alpha",
		ids.Member("w", 2): "beta",
	}
	sys := csp.NewSystem().
		Process("alpha", func(p *csp.Proc) error {
			_, err := h.Enroll(p, ids.Member("w", 1), binding, nil)
			return err
		}).
		Process("beta", func(p *csp.Proc) error {
			_, err := h.Enroll(p, ids.Member("w", 2), binding, nil)
			return err
		})
	h.AddSupervisor(sys, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := sys.Run(ctx); err != nil {
		t.Fatal(err)
	}
	id := <-got
	if id.role != ids.Member("w", 1) || id.idx != 1 {
		t.Errorf("role = %v idx = %d", id.role, id.idx)
	}
	if id.pid != "alpha" {
		t.Errorf("PID = %q, want the enrolling process's name", id.pid)
	}
	if id.perf != 0 {
		t.Errorf("Performance = %d, want 0 (unobservable in the translation)", id.perf)
	}
	if id.fam != 2 {
		t.Errorf("FamilySize = %d", id.fam)
	}
	if id.term || !id.filled {
		t.Errorf("term=%v filled=%v, want false/true", id.term, id.filled)
	}
	if id.anyFrom != ids.Member("w", 2) || id.anyVal != "first" {
		t.Errorf("RecvAny = (%v, %v), want (w[2], first)", id.anyFrom, id.anyVal)
	}
	if id.selVal != "second" {
		t.Errorf("select value = %v, want second", id.selVal)
	}
}

// TestRecvAnyFromUnboundProcess covers the reverse-binding error path.
func TestRecvAnyFromUnboundProcess(t *testing.T) {
	def, err := core.NewScript("unbound").
		Role("a", func(rc core.Ctx) error {
			_, _, _, err := rc.RecvAny()
			if err == nil {
				return context.Canceled // any sentinel: we want an error
			}
			return nil
		}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	h, err := New(def)
	if err != nil {
		t.Fatal(err)
	}
	binding := map[ids.RoleRef]string{ids.Role("a"): "P"}
	sys := csp.NewSystem().
		Process("P", func(p *csp.Proc) error {
			_, err := h.Enroll(p, ids.Role("a"), binding, nil)
			return err
		}).
		// An outsider (not in the binding) sends a script-tagged message.
		Process("intruder", func(p *csp.Proc) error {
			return p.SendTagged("P", csp.Tag(h.tagComm+"x"), 1)
		})
	h.AddSupervisor(sys, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := sys.Run(ctx); err != nil {
		t.Fatal(err)
	}
}
