package cspx

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/scriptabs/goscript/internal/core"
	"github.com/scriptabs/goscript/internal/csp"
	"github.com/scriptabs/goscript/internal/ids"
	"github.com/scriptabs/goscript/internal/patterns"
)

func runSys(t *testing.T, s *csp.System) error {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	return s.Run(ctx)
}

// fullBinding binds every role of a broadcast script: sender to procT,
// recipient[i] to procR(i).
func broadcastBinding(n int) map[ids.RoleRef]string {
	b := map[ids.RoleRef]string{ids.Role(patterns.RoleSender): "T"}
	for i := 1; i <= n; i++ {
		b[ids.Member(patterns.RoleRecipient, i)] = csp.Name("q", i)
	}
	return b
}

func TestTranslatedStarBroadcast(t *testing.T) {
	const n = 5
	def := patterns.StarBroadcast(n)
	h, err := New(def)
	if err != nil {
		t.Fatal(err)
	}
	binding := broadcastBinding(n)

	var mu sync.Mutex
	got := map[int]any{}
	sys := csp.NewSystem().
		Process("T", func(p *csp.Proc) error {
			_, err := h.Enroll(p, ids.Role(patterns.RoleSender), binding, []any{"the-x"})
			return err
		}).
		ProcessArray("q", n, func(p *csp.Proc) error {
			outs, err := h.Enroll(p, ids.Member(patterns.RoleRecipient, p.Index()), binding, nil)
			if err != nil {
				return err
			}
			mu.Lock()
			got[p.Index()] = outs[0]
			mu.Unlock()
			return nil
		})
	h.AddSupervisor(sys, 1)
	if err := runSys(t, sys); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= n; i++ {
		if got[i] != "the-x" {
			t.Errorf("recipient %d got %v", i, got[i])
		}
	}
}

func TestTranslatedPipelineBroadcast(t *testing.T) {
	const n = 4
	def := patterns.PipelineBroadcast(n)
	h, err := New(def)
	if err != nil {
		t.Fatal(err)
	}
	binding := broadcastBinding(n)

	var mu sync.Mutex
	got := map[int]any{}
	sys := csp.NewSystem().
		Process("T", func(p *csp.Proc) error {
			_, err := h.Enroll(p, ids.Role(patterns.RoleSender), binding, []any{42})
			return err
		}).
		ProcessArray("q", n, func(p *csp.Proc) error {
			outs, err := h.Enroll(p, ids.Member(patterns.RoleRecipient, p.Index()), binding, nil)
			if err != nil {
				return err
			}
			mu.Lock()
			got[p.Index()] = outs[0]
			mu.Unlock()
			return nil
		})
	h.AddSupervisor(sys, 1)
	if err := runSys(t, sys); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= n; i++ {
		if got[i] != 42 {
			t.Errorf("recipient %d got %v", i, got[i])
		}
	}
}

// TestSuccessiveActivationsThroughSupervisor checks Figure 7's purpose: the
// supervisor must force the second performance to wait for the first to end
// completely, pairing first offers with first offers (Figure 2's u=x, y=v).
func TestSuccessiveActivationsThroughSupervisor(t *testing.T) {
	const n = 2
	def := patterns.StarBroadcast(n)
	h, err := New(def)
	if err != nil {
		t.Fatal(err)
	}
	binding := broadcastBinding(n)

	var mu sync.Mutex
	rounds := map[int][]any{}
	sys := csp.NewSystem().
		Process("T", func(p *csp.Proc) error {
			for _, x := range []any{"x", "v"} {
				if _, err := h.Enroll(p, ids.Role(patterns.RoleSender), binding, []any{x}); err != nil {
					return err
				}
			}
			return nil
		}).
		ProcessArray("q", n, func(p *csp.Proc) error {
			for round := 0; round < 2; round++ {
				outs, err := h.Enroll(p, ids.Member(patterns.RoleRecipient, p.Index()), binding, nil)
				if err != nil {
					return err
				}
				mu.Lock()
				rounds[round] = append(rounds[round], outs[0])
				mu.Unlock()
			}
			return nil
		})
	h.AddSupervisor(sys, 2)
	if err := runSys(t, sys); err != nil {
		t.Fatal(err)
	}
	for round, want := range map[int]any{0: "x", 1: "v"} {
		for _, v := range rounds[round] {
			if v != want {
				t.Errorf("round %d delivered %v, want %v (u=x, y=v violated)", round, rounds[round], want)
			}
		}
	}
}

func TestSupervisorBlocksOverlappingPerformance(t *testing.T) {
	// With m=1 (a single-role script), a second start must wait for the
	// first end. The second enroller's start is sent while the first is
	// mid-body; we verify strict serialization via a shared counter.
	def, err := core.NewScript("solo").
		Role("only", func(rc core.Ctx) error { return nil }).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	h, err := New(def)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	active, maxActive := 0, 0
	body := func(p *csp.Proc) error {
		for i := 0; i < 5; i++ {
			if err := p.SendTagged(h.SupervisorName(), h.startTag(0), nil); err != nil {
				return err
			}
			mu.Lock()
			active++
			if active > maxActive {
				maxActive = active
			}
			mu.Unlock()
			time.Sleep(time.Millisecond)
			mu.Lock()
			active--
			mu.Unlock()
			if err := p.SendTagged(h.SupervisorName(), h.endTag(0), nil); err != nil {
				return err
			}
		}
		return nil
	}
	sys := csp.NewSystem().Process("A", body).Process("B", body)
	h.AddSupervisor(sys, 10)
	if err := runSys(t, sys); err != nil {
		t.Fatal(err)
	}
	if maxActive != 1 {
		t.Fatalf("maxActive = %d, want 1 (successive activations violated)", maxActive)
	}
}

func TestUnboundRoleIsRejected(t *testing.T) {
	const n = 2
	def := patterns.StarBroadcast(n)
	h, err := New(def)
	if err != nil {
		t.Fatal(err)
	}
	// Sender's binding misses recipient[2]: its body must fail.
	partial := map[ids.RoleRef]string{
		ids.Role(patterns.RoleSender):         "T",
		ids.Member(patterns.RoleRecipient, 1): "q[1]",
	}
	errCh := make(chan error, 1)
	sys := csp.NewSystem().
		Process("T", func(p *csp.Proc) error {
			_, err := h.Enroll(p, ids.Role(patterns.RoleSender), partial, []any{1})
			errCh <- err
			return nil // swallow; assert below
		}).
		Process("q[1]", func(p *csp.Proc) error {
			// Receive what the sender manages to send before failing.
			_, _ = p.RecvTagged("T", csp.Tag(h.tagComm))
			return nil
		})
	// With an incomplete enrollment the supervisor can never finish its
	// performance, so run the system under a cancellable context and stop
	// it once the enrollment error is captured.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	h.AddSupervisor(sys, 1)
	done := make(chan error, 1)
	go func() { done <- sys.Run(ctx) }()
	enrollErr := <-errCh
	cancel()
	<-done // the supervisor exits with a context error; expected here
	if !errors.Is(enrollErr, ErrUnboundRole) {
		t.Fatalf("enroll err = %v, want ErrUnboundRole", enrollErr)
	}
	var re *core.RoleError
	if !errors.As(enrollErr, &re) {
		t.Fatalf("enroll err = %T, want *core.RoleError", enrollErr)
	}
}

func TestOpenFamilyRejected(t *testing.T) {
	def, err := core.NewScript("open").
		Role("hub", func(rc core.Ctx) error { return nil }).
		OpenFamily("w", func(rc core.Ctx) error { return nil }).
		CriticalSet(ids.Role("hub")).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(def); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("New = %v, want ErrUnsupported", err)
	}
}

func TestTranslatedSelectWithOutputGuards(t *testing.T) {
	// A script whose hub uses Select with send branches (Figure 6's shape):
	// transmit to whichever recipient is ready first.
	const n = 3
	def, err := core.NewScript("fig6").
		Role("tx", func(rc core.Ctx) error {
			sent := make([]bool, n+1)
			remaining := n
			for remaining > 0 {
				branches := make([]core.SelectBranch, 0, n)
				for k := 1; k <= n; k++ {
					branches = append(branches,
						core.SendTo(ids.Member("rx", k), rc.Arg(0)).When(!sent[k]))
				}
				sel, err := rc.Select(branches...)
				if err != nil {
					return err
				}
				sent[sel.Peer.Index] = true
				remaining--
			}
			return nil
		}).
		Family("rx", n, func(rc core.Ctx) error {
			v, err := rc.Recv(ids.Role("tx"))
			if err != nil {
				return err
			}
			rc.SetResult(0, v)
			return nil
		}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	h, err := New(def)
	if err != nil {
		t.Fatal(err)
	}
	binding := map[ids.RoleRef]string{ids.Role("tx"): "T"}
	for i := 1; i <= n; i++ {
		binding[ids.Member("rx", i)] = csp.Name("q", i)
	}
	var mu sync.Mutex
	got := map[int]any{}
	sys := csp.NewSystem().
		Process("T", func(p *csp.Proc) error {
			_, err := h.Enroll(p, ids.Role("tx"), binding, []any{"guarded"})
			return err
		}).
		ProcessArray("q", n, func(p *csp.Proc) error {
			outs, err := h.Enroll(p, ids.Member("rx", p.Index()), binding, nil)
			if err != nil {
				return err
			}
			mu.Lock()
			got[p.Index()] = outs[0]
			mu.Unlock()
			return nil
		})
	h.AddSupervisor(sys, 1)
	if err := runSys(t, sys); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= n; i++ {
		if got[i] != "guarded" {
			t.Errorf("rx %d got %v", i, got[i])
		}
	}
}

func TestSupervisorNameAndTagsAreScriptScoped(t *testing.T) {
	defA := patterns.StarBroadcast(1)
	hA, err := New(defA)
	if err != nil {
		t.Fatal(err)
	}
	if hA.SupervisorName() != "p_star_broadcast" {
		t.Errorf("supervisor name = %q", hA.SupervisorName())
	}
	if hA.startTag(0) == hA.endTag(0) {
		t.Error("start/end tags must differ")
	}
	if hA.startTag(0) == hA.startTag(1) {
		t.Error("per-slot start tags must differ")
	}
	if fmt.Sprint(hA.tagComm) == "" {
		t.Error("comm tag prefix empty")
	}
}

// TestFastReEnrollerDoesNotStealSlots is the regression test for the
// refinement over Figure 7: with a count-based supervisor, a fast process
// re-enrolling for the next performance could consume the slot a slow
// process still needed, deadlocking the current performance. Per-role slot
// tags make this impossible.
func TestFastReEnrollerDoesNotStealSlots(t *testing.T) {
	const n, rounds = 2, 12
	def := patterns.StarBroadcast(n)
	h, err := New(def)
	if err != nil {
		t.Fatal(err)
	}
	binding := broadcastBinding(n)

	sys := csp.NewSystem().
		Process("T", func(p *csp.Proc) error {
			for r := 0; r < rounds; r++ {
				if _, err := h.Enroll(p, ids.Role(patterns.RoleSender), binding, []any{r}); err != nil {
					return err
				}
			}
			return nil
		}).
		// q[1] re-enrolls as fast as it can; q[2] dawdles before each
		// enrollment, maximizing the window for slot theft.
		Process(csp.Name("q", 1), func(p *csp.Proc) error {
			for r := 0; r < rounds; r++ {
				if _, err := h.Enroll(p, ids.Member(patterns.RoleRecipient, 1), binding, nil); err != nil {
					return err
				}
			}
			return nil
		}).
		Process(csp.Name("q", 2), func(p *csp.Proc) error {
			for r := 0; r < rounds; r++ {
				time.Sleep(2 * time.Millisecond)
				outs, err := h.Enroll(p, ids.Member(patterns.RoleRecipient, 2), binding, nil)
				if err != nil {
					return err
				}
				if outs[0] != r {
					return fmt.Errorf("round %d delivered %v", r, outs[0])
				}
			}
			return nil
		})
	h.AddSupervisor(sys, rounds)
	if err := runSys(t, sys); err != nil {
		t.Fatal(err)
	}
}
