package cspx

import (
	"context"
	"fmt"

	"github.com/scriptabs/goscript/internal/core"
	"github.com/scriptabs/goscript/internal/csp"
	"github.com/scriptabs/goscript/internal/ids"
)

// hostCtx executes a role body on the CSP substrate, applying the paper's
// rewriting: role names are replaced by process names from the enrollment's
// binding, and every communication is tagged with the script's unique tag
// prefix ("r1!x+y becomes P_i1!s(x+y)").
type hostCtx struct {
	core.ParamBag
	host    *Host
	proc    *csp.Proc
	role    ids.RoleRef
	binding map[ids.RoleRef]string
	reverse map[string]ids.RoleRef
}

var _ core.Ctx = (*hostCtx)(nil)

func (rc *hostCtx) Context() context.Context { return rc.proc.Context() }
func (rc *hostCtx) Role() ids.RoleRef        { return rc.role }
func (rc *hostCtx) Index() int               { return rc.role.Index }
func (rc *hostCtx) PID() ids.PID             { return ids.PID(rc.proc.Name()) }

// Performance returns 0: the enrolling CSP process cannot observe the
// supervisor's performance counter.
func (rc *hostCtx) Performance() int { return 0 }

func (rc *hostCtx) peerName(role ids.RoleRef) (string, error) {
	name, ok := rc.binding[role]
	if !ok {
		return "", fmt.Errorf("%w: %s", ErrUnboundRole, role)
	}
	return name, nil
}

func (rc *hostCtx) commTag(tag string) csp.Tag {
	return csp.Tag(rc.host.tagComm + tag)
}

func (rc *hostCtx) Send(to ids.RoleRef, v any) error { return rc.SendTag(to, "", v) }

func (rc *hostCtx) SendTag(to ids.RoleRef, tag string, v any) error {
	name, err := rc.peerName(to)
	if err != nil {
		return err
	}
	return rc.proc.SendTagged(name, rc.commTag(tag), v)
}

// SendAll sends v to each target in turn: the CSP substrate has no
// vectorized scatter, so the fan-out is the paper's serial loop.
func (rc *hostCtx) SendAll(tos []ids.RoleRef, v any) error {
	for _, to := range tos {
		if err := rc.SendTag(to, "", v); err != nil {
			return err
		}
	}
	return nil
}

func (rc *hostCtx) Recv(from ids.RoleRef) (any, error) { return rc.RecvTag(from, "") }

func (rc *hostCtx) RecvTag(from ids.RoleRef, tag string) (any, error) {
	name, err := rc.peerName(from)
	if err != nil {
		return nil, err
	}
	return rc.proc.RecvTagged(name, rc.commTag(tag))
}

func (rc *hostCtx) RecvAny() (ids.RoleRef, string, any, error) {
	from, tag, v, err := rc.proc.RecvAny()
	if err != nil {
		return ids.RoleRef{}, "", nil, err
	}
	role, ok := rc.reverse[from]
	if !ok {
		return ids.RoleRef{}, "", nil, fmt.Errorf("cspx: message from unbound process %s", from)
	}
	return role, stripPrefix(string(tag), rc.host.tagComm), v, nil
}

func stripPrefix(tag, prefix string) string {
	if len(tag) >= len(prefix) && tag[:len(prefix)] == prefix {
		return tag[len(prefix):]
	}
	return tag
}

// Select maps the script's guarded alternative onto the CSP substrate's
// alternative command, which supports input and output guards alike.
func (rc *hostCtx) Select(branches ...core.SelectBranch) (core.Selected, error) {
	type outcome struct {
		idx  int
		peer ids.RoleRef
		tag  string
		val  any
	}
	var committed outcome
	guards := make([]csp.Guard, 0, len(branches))
	for i, b := range branches {
		i, b := i, b
		if !b.Enabled() {
			continue
		}
		peer, anyPeer := b.BranchPeer()
		record := func(p ids.RoleRef, tag string) func(any) error {
			return func(v any) error {
				committed = outcome{idx: i, peer: p, tag: tag, val: v}
				return nil
			}
		}
		switch {
		case b.IsSend():
			name, err := rc.peerName(peer)
			if err != nil {
				return core.Selected{}, err
			}
			guards = append(guards, csp.OnSend(name, rc.commTag(b.BranchTag()), b.BranchValue(),
				record(peer, b.BranchTag())))
		case anyPeer:
			guards = append(guards, csp.OnAny(rc.commTag(b.BranchTag()), func(v any) error {
				// The substrate does not report the sender of an OnAny
				// commit; an unbound zero role is returned.
				committed = outcome{idx: i, tag: b.BranchTag(), val: v}
				return nil
			}))
		default:
			name, err := rc.peerName(peer)
			if err != nil {
				return core.Selected{}, err
			}
			guards = append(guards, csp.On(name, rc.commTag(b.BranchTag()),
				record(peer, b.BranchTag())))
		}
	}
	if len(guards) == 0 {
		return core.Selected{}, core.ErrNoBranches
	}
	if err := rc.proc.Alt(guards...); err != nil {
		return core.Selected{}, err
	}
	return core.Selected{
		Index: committed.idx, Peer: committed.peer,
		Tag: committed.tag, Val: committed.val,
	}, nil
}

// Terminated always reports false: the paper's CSP translation has no
// critical role sets, so every named partner is assumed present.
func (rc *hostCtx) Terminated(ids.RoleRef) bool { return false }

// Filled always reports true under the full-naming assumption.
func (rc *hostCtx) Filled(ids.RoleRef) bool { return true }

// FamilySize returns the declared extent of a fixed family.
func (rc *hostCtx) FamilySize(name string) int { return rc.host.def.FamilyExtent(name) }
