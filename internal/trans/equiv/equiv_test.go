package equiv

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/scriptabs/goscript/internal/core"
	"github.com/scriptabs/goscript/internal/csp"
	"github.com/scriptabs/goscript/internal/ids"
	"github.com/scriptabs/goscript/internal/patterns"
	"github.com/scriptabs/goscript/internal/trans/adax"
	"github.com/scriptabs/goscript/internal/trans/cspx"
	"github.com/scriptabs/goscript/internal/trans/monx"
)

// enrollment is one scripted participation: which role, with which args.
type enrollment struct {
	role ids.RoleRef
	args []any
}

// runner executes a full cast of enrollments (one per role, concurrently)
// against one host and returns each role's out-parameters.
type runner func(t *testing.T, def core.Definition, cast []enrollment) map[string][]any

// runNative runs the cast on the native runtime.
func runNative(t *testing.T, def core.Definition, cast []enrollment) map[string][]any {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	in := core.NewInstance(def)
	defer in.Close()
	return collect(t, cast, func(e enrollment) ([]any, error) {
		res, err := in.Enroll(ctx, core.Enrollment{
			PID: ids.PID("proc-" + e.role.String()), Role: e.role, Args: e.args,
		})
		return res.Values, err
	})
}

// runCSPX runs the cast through the CSP translation with full naming.
func runCSPX(t *testing.T, def core.Definition, cast []enrollment) map[string][]any {
	t.Helper()
	host, err := cspx.New(def)
	if err != nil {
		t.Fatalf("cspx: %v", err)
	}
	binding := make(map[ids.RoleRef]string, len(cast))
	for _, e := range cast {
		binding[e.role] = "proc-" + e.role.String()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	var mu sync.Mutex
	outs := make(map[string][]any, len(cast))
	sys := csp.NewSystem()
	for _, e := range cast {
		e := e
		sys.Process(binding[e.role], func(p *csp.Proc) error {
			vals, err := host.Enroll(p, e.role, binding, e.args)
			if err != nil {
				return err
			}
			mu.Lock()
			outs[e.role.String()] = vals
			mu.Unlock()
			return nil
		})
	}
	host.AddSupervisor(sys, 1)
	if err := sys.Run(ctx); err != nil {
		t.Fatalf("cspx system: %v", err)
	}
	return outs
}

// runAdaX runs the cast through the Ada translation.
func runAdaX(t *testing.T, def core.Definition, cast []enrollment) map[string][]any {
	t.Helper()
	host, err := adax.New(def)
	if err != nil {
		t.Fatalf("adax: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := host.Start(ctx); err != nil {
		t.Fatalf("adax start: %v", err)
	}
	outs := collect(t, cast, func(e enrollment) ([]any, error) {
		return host.Enroll(ctx, e.role, e.args)
	})
	if err := host.Shutdown(); err != nil {
		t.Fatalf("adax shutdown: %v", err)
	}
	return outs
}

// runMonX runs the cast through the monitor embedding.
func runMonX(t *testing.T, def core.Definition, cast []enrollment) map[string][]any {
	t.Helper()
	host, err := monx.New(def, monx.WithCapacity(4))
	if err != nil {
		t.Fatalf("monx: %v", err)
	}
	return collect(t, cast, func(e enrollment) ([]any, error) {
		return host.Enroll(e.role, e.args)
	})
}

// collect runs every enrollment concurrently and gathers the outputs.
func collect(t *testing.T, cast []enrollment, enroll func(enrollment) ([]any, error)) map[string][]any {
	t.Helper()
	var mu sync.Mutex
	outs := make(map[string][]any, len(cast))
	var wg sync.WaitGroup
	for _, e := range cast {
		e := e
		wg.Add(1)
		go func() {
			defer wg.Done()
			vals, err := enroll(e)
			if err != nil {
				t.Errorf("role %s: %v", e.role, err)
				return
			}
			mu.Lock()
			outs[e.role.String()] = vals
			mu.Unlock()
		}()
	}
	wg.Wait()
	return outs
}

// scenario is one definition plus its cast and the expected outputs.
type scenario struct {
	name string
	def  core.Definition
	cast []enrollment
	want map[string][]any
}

func scenarios() []scenario {
	broadcastCast := func(n int, x any) ([]enrollment, map[string][]any) {
		cast := []enrollment{{role: ids.Role(patterns.RoleSender), args: []any{x}}}
		want := map[string][]any{patterns.RoleSender: nil}
		for i := 1; i <= n; i++ {
			r := ids.Member(patterns.RoleRecipient, i)
			cast = append(cast, enrollment{role: r})
			want[r.String()] = []any{x}
		}
		return cast, want
	}

	starCast, starWant := broadcastCast(3, "S")
	pipeCast, pipeWant := broadcastCast(3, 42)

	// sumChain: a[1] sends its arg to a[2], which adds its own and reports.
	sumChain := core.NewScript("sum_chain").
		Family("a", 2, func(rc core.Ctx) error {
			if rc.Index() == 1 {
				return rc.Send(ids.Member("a", 2), rc.Arg(0))
			}
			v, err := rc.Recv(ids.Member("a", 1))
			if err != nil {
				return err
			}
			rc.SetResult(0, v.(int)+rc.Arg(0).(int))
			return nil
		}).
		MustBuild()

	return []scenario{
		{"star_broadcast", patterns.StarBroadcast(3), starCast, starWant},
		{"pipeline_broadcast", patterns.PipelineBroadcast(3), pipeCast, pipeWant},
		{"sum_chain", sumChain, []enrollment{
			{role: ids.Member("a", 1), args: []any{10}},
			{role: ids.Member("a", 2), args: []any{32}},
		}, map[string][]any{
			"a[1]": nil,
			"a[2]": {42},
		}},
	}
}

// TestObservationalEquivalenceAcrossHosts is the Section IV theorem as a
// test: for each scenario, all four runtimes produce the same role outputs.
func TestObservationalEquivalenceAcrossHosts(t *testing.T) {
	hosts := map[string]runner{
		"native": runNative,
		"cspx":   runCSPX,
		"adax":   runAdaX,
		"monx":   runMonX,
	}
	for _, sc := range scenarios() {
		sc := sc
		for hostName, run := range hosts {
			hostName, run := hostName, run
			t.Run(fmt.Sprintf("%s/%s", sc.name, hostName), func(t *testing.T) {
				got := run(t, sc.def, sc.cast)
				for role, want := range sc.want {
					g := got[role]
					if len(want) == 0 {
						if len(g) != 0 {
							t.Errorf("role %s produced %v, want none", role, g)
						}
						continue
					}
					if len(g) != len(want) {
						t.Fatalf("role %s produced %v, want %v", role, g, want)
					}
					for i := range want {
						if g[i] != want[i] {
							t.Errorf("role %s value %d = %v, want %v", role, i, g[i], want[i])
						}
					}
				}
			})
		}
	}
}
