// Package equiv holds the cross-host observational-equivalence suite: the
// same script definitions are executed on the native runtime, the CSP
// translation, the Ada translation, and the monitor embedding, and their
// observable results (role out-parameters) are compared. This is the
// repository-level statement of the paper's Section IV: the script
// construct can be added to each host language without changing what the
// enrolling processes observe.
//
// The package's content is its test file; see equiv_test.go.
package equiv
