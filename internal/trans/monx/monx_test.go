package monx

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/scriptabs/goscript/internal/core"
	"github.com/scriptabs/goscript/internal/ids"
	"github.com/scriptabs/goscript/internal/monitor"
	"github.com/scriptabs/goscript/internal/patterns"
)

// runMailboxBroadcast runs the star broadcast on the monitor host and
// returns the received values.
func runMailboxBroadcast(t *testing.T, opts ...Option) []any {
	t.Helper()
	const n = 5
	h, err := New(patterns.StarBroadcast(n), opts...)
	if err != nil {
		t.Fatal(err)
	}
	results := make([]any, n+1)
	var wg sync.WaitGroup
	for i := 1; i <= n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			outs, err := h.Enroll(ids.Member(patterns.RoleRecipient, i), nil)
			if err != nil {
				t.Errorf("recipient %d: %v", i, err)
				return
			}
			results[i] = outs[0]
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := h.Enroll(ids.Role(patterns.RoleSender), []any{"mbox"}); err != nil {
			t.Errorf("sender: %v", err)
		}
	}()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("mailbox broadcast hung")
	}
	return results[1:]
}

func TestFigure12MailboxBroadcast(t *testing.T) {
	for _, v := range runMailboxBroadcast(t) {
		if v != "mbox" {
			t.Fatalf("recipient got %v", v)
		}
	}
}

func TestMailboxBroadcastSharedMonitor(t *testing.T) {
	for _, v := range runMailboxBroadcast(t, WithSharedMonitor()) {
		if v != "mbox" {
			t.Fatalf("recipient got %v", v)
		}
	}
}

func TestMailboxBroadcastMesa(t *testing.T) {
	for _, v := range runMailboxBroadcast(t, WithSemantics(monitor.Mesa)) {
		if v != "mbox" {
			t.Fatalf("recipient got %v", v)
		}
	}
}

func TestMailboxBroadcastLargerCapacity(t *testing.T) {
	for _, v := range runMailboxBroadcast(t, WithCapacity(4)) {
		if v != "mbox" {
			t.Fatalf("recipient got %v", v)
		}
	}
}

func TestSuccessivePerformancesAndFigure1Rule(t *testing.T) {
	// Two rounds through a two-role script; the second enrollment for a
	// role must wait for the whole first performance.
	def, err := core.NewScript("pair").
		Role("a", func(rc core.Ctx) error {
			return rc.Send(ids.Role("b"), rc.Arg(0))
		}).
		Role("b", func(rc core.Ctx) error {
			v, err := rc.Recv(ids.Role("a"))
			rc.SetResult(0, v)
			return err
		}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	h, err := New(def)
	if err != nil {
		t.Fatal(err)
	}
	bDone := make(chan any, 2)
	go func() {
		for round := 0; round < 2; round++ {
			outs, err := h.Enroll(ids.Role("b"), nil)
			if err != nil {
				t.Errorf("b round %d: %v", round, err)
				return
			}
			bDone <- outs[0]
		}
	}()
	for _, x := range []any{"x", "v"} {
		if _, err := h.Enroll(ids.Role("a"), []any{x}); err != nil {
			t.Fatal(err)
		}
	}
	if u := <-bDone; u != "x" {
		t.Fatalf("u = %v, want x", u)
	}
	if y := <-bDone; y != "v" {
		t.Fatalf("y = %v, want v", y)
	}
	if got := h.Performances(); got != 2 {
		t.Fatalf("performances = %d, want 2", got)
	}
}

func TestSenderDoesNotWaitWithRoomyMailboxes(t *testing.T) {
	// With capacity >= 1 and no recipient reading yet, the sender of a
	// 1-recipient broadcast deposits and finishes; the recipient collects
	// later (asynchrony of the mailbox scheme).
	h, err := New(patterns.StarBroadcast(1), WithCapacity(1))
	if err != nil {
		t.Fatal(err)
	}
	sendDone := make(chan struct{})
	go func() {
		if _, err := h.Enroll(ids.Role(patterns.RoleSender), []any{1}); err != nil {
			t.Errorf("sender: %v", err)
		}
		close(sendDone)
	}()
	select {
	case <-sendDone:
	case <-time.After(5 * time.Second):
		t.Fatal("sender blocked although the mailbox had room")
	}
	outs, err := h.Enroll(ids.Member(patterns.RoleRecipient, 1), nil)
	if err != nil || outs[0] != 1 {
		t.Fatalf("recipient: outs=%v err=%v", outs, err)
	}
}

func TestSelectRecvOnly(t *testing.T) {
	def, err := core.NewScript("sel").
		Role("hub", func(rc core.Ctx) error {
			seen := 0
			for seen < 2 {
				sel, err := rc.Select(
					core.RecvTagFrom(ids.Member("w", 1), "m"),
					core.RecvTagFrom(ids.Member("w", 2), "m"),
				)
				if err != nil {
					return err
				}
				if sel.Peer.Name != "w" {
					return fmt.Errorf("peer = %v", sel.Peer)
				}
				seen++
			}
			rc.SetResult(0, seen)
			return nil
		}).
		Family("w", 2, func(rc core.Ctx) error {
			return rc.SendTag(ids.Role("hub"), "m", rc.Index())
		}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	h, err := New(def)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 1; i <= 2; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := h.Enroll(ids.Member("w", i), nil); err != nil {
				t.Errorf("w%d: %v", i, err)
			}
		}()
	}
	outs, err := h.Enroll(ids.Role("hub"), nil)
	wg.Wait()
	if err != nil || outs[0] != 2 {
		t.Fatalf("outs=%v err=%v", outs, err)
	}
}

func TestSelectWithSendBranchRejected(t *testing.T) {
	var selErr error
	def, err := core.NewScript("selsend").
		Role("a", func(rc core.Ctx) error {
			_, selErr = rc.Select(core.SendTo(ids.Role("b"), 1))
			return rc.Send(ids.Role("b"), 2) // unblock b
		}).
		Role("b", func(rc core.Ctx) error {
			_, err := rc.Recv(ids.Role("a"))
			return err
		}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	h, err := New(def)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); _, _ = h.Enroll(ids.Role("a"), nil) }()
	go func() { defer wg.Done(); _, _ = h.Enroll(ids.Role("b"), nil) }()
	wg.Wait()
	if !errors.Is(selErr, ErrUnsupported) {
		t.Fatalf("select err = %v, want ErrUnsupported", selErr)
	}
}

func TestRoleBodyErrorWrapped(t *testing.T) {
	boom := errors.New("boom")
	def, err := core.NewScript("failing").
		Role("solo", func(rc core.Ctx) error { return boom }).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	h, err := New(def)
	if err != nil {
		t.Fatal(err)
	}
	_, enrollErr := h.Enroll(ids.Role("solo"), nil)
	var re *core.RoleError
	if !errors.As(enrollErr, &re) || !errors.Is(enrollErr, boom) {
		t.Fatalf("err = %v", enrollErr)
	}
	// Next performance still works.
	if _, err := h.Enroll(ids.Role("solo"), nil); !errors.Is(err, boom) {
		t.Fatalf("second performance: %v", err)
	}
}

func TestOpenFamilyRejected(t *testing.T) {
	def, err := core.NewScript("open").
		Role("hub", func(rc core.Ctx) error { return nil }).
		OpenFamily("w", func(rc core.Ctx) error { return nil }).
		CriticalSet(ids.Role("hub")).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(def); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("New = %v, want ErrUnsupported", err)
	}
}

func TestUnknownRole(t *testing.T) {
	h, err := New(patterns.StarBroadcast(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Enroll(ids.Role("ghost"), nil); !errors.Is(err, core.ErrUnknownRole) {
		t.Fatalf("err = %v, want ErrUnknownRole", err)
	}
}

func TestTerminatedReportsFinishedRole(t *testing.T) {
	gate := make(chan struct{})
	probe := make(chan bool, 2)
	def, err := core.NewScript("term").
		Role("fast", func(rc core.Ctx) error { return nil }).
		Role("slow", func(rc core.Ctx) error {
			<-gate
			probe <- rc.Terminated(ids.Role("fast"))
			probe <- rc.Terminated(ids.Role("slow"))
			return nil
		}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	h, err := New(def)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		if _, err := h.Enroll(ids.Role("fast"), nil); err != nil {
			t.Errorf("fast: %v", err)
		}
		close(gate)
	}()
	go func() {
		defer wg.Done()
		if _, err := h.Enroll(ids.Role("slow"), nil); err != nil {
			t.Errorf("slow: %v", err)
		}
	}()
	wg.Wait()
	if !<-probe {
		t.Error("Terminated(fast) after its finish = false")
	}
	if <-probe {
		t.Error("Terminated(self) while running = true")
	}
}
