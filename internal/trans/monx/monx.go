// Package monx implements the paper's third host embedding: scripts with
// monitors (Section IV, Figure 12). Each role owns a mailbox; inter-role
// sends deposit into the peer's mailbox and receives take from one's own,
// with "WAIT UNTIL" blocking. A monitor-based supervisor implements
// immediate initiation and termination — which the paper says a monitor
// supervisor does "most easily" — and the successive-activations rule.
//
// Two packagings are provided, mirroring the paper's discussion:
//
//   - the default multiple-monitor scheme ("our script solution follows the
//     multiple monitor scheme, but with the script providing the top-level
//     packaging"): one monitor per mailbox, so different mailboxes are
//     accessed concurrently;
//   - WithSharedMonitor, the single-black-box scheme, where "all access to
//     any mailbox is serialized" — kept so the cost of the unified
//     abstraction is measurable (experiment E10).
package monx

import (
	"errors"
	"fmt"
	"sync"

	"github.com/scriptabs/goscript/internal/core"
	"github.com/scriptabs/goscript/internal/ids"
	"github.com/scriptabs/goscript/internal/monitor"
)

// ErrUnsupported reports a script feature the monitor embedding cannot
// express (open-ended families; Select with send branches — a monitor
// cannot wait on two monitors at once).
var ErrUnsupported = errors.New("monx: feature not supported by the monitor embedding")

// Option configures a Host.
type Option func(*config)

type config struct {
	semantics monitor.Semantics
	capacity  int
	shared    bool
}

// WithSemantics selects the condition discipline (default Hoare).
func WithSemantics(s monitor.Semantics) Option {
	return func(c *config) { c.semantics = s }
}

// WithCapacity sets the mailbox capacity (default 1, as in Figure 12's
// one-slot mailbox with a full/empty status).
func WithCapacity(n int) Option {
	return func(c *config) {
		if n > 0 {
			c.capacity = n
		}
	}
}

// WithSharedMonitor houses all mailboxes in a single monitor, serializing
// every access (the paper's "unified abstraction" packaging).
func WithSharedMonitor() Option {
	return func(c *config) { c.shared = true }
}

// Host is the monitor-side embedding of one script instance.
type Host struct {
	def       core.Definition
	roles     []ids.RoleRef
	mailboxes map[ids.RoleRef]*mailbox

	sup    *monitor.M
	filled map[ids.RoleRef]bool
	done   map[ids.RoleRef]bool
	perf   int
}

// New prepares the embedding of def. Open-ended families are rejected;
// critical role sets are not supported (a performance completes only when
// every declared role has enrolled and finished), matching the paper's
// Figure 12 assumption that the critical set is the full role collection.
func New(def core.Definition, opts ...Option) (*Host, error) {
	if def.HasOpenFamilies() {
		return nil, fmt.Errorf("%w: open-ended families", ErrUnsupported)
	}
	cfg := config{semantics: monitor.Hoare, capacity: 1}
	for _, o := range opts {
		o(&cfg)
	}
	h := &Host{
		def:       def,
		roles:     def.Roles(),
		mailboxes: make(map[ids.RoleRef]*mailbox),
		sup:       monitor.New(cfg.semantics),
		filled:    make(map[ids.RoleRef]bool),
		done:      make(map[ids.RoleRef]bool),
	}
	var sharedM *monitor.M
	if cfg.shared {
		sharedM = monitor.New(cfg.semantics)
	}
	for _, r := range h.roles {
		m := sharedM
		if m == nil {
			m = monitor.New(cfg.semantics)
		}
		h.mailboxes[r] = &mailbox{m: m, capacity: cfg.capacity}
	}
	return h, nil
}

// Enroll plays the given role for one performance: it waits (WAIT UNTIL)
// for a performance in which the role is free, runs the body in the calling
// goroutine — the monitor embedding, unlike the Ada one, preserves the
// paper's continuation property — and returns the out parameters.
//
// Monitors have no cancellation; an enrollment whose partners never arrive
// blocks, exactly as the paper's monitor semantics would.
func (h *Host) Enroll(role ids.RoleRef, args []any) ([]any, error) {
	body, err := h.def.Body(role)
	if err != nil {
		return nil, err
	}
	var perf int
	h.sup.Enter()
	h.sup.WaitUntil(func() bool { return !h.filled[role] })
	h.filled[role] = true
	if h.countFilled() == 1 {
		h.perf++ // first enrollment activates the performance (immediate initiation)
	}
	perf = h.perf
	h.sup.Leave()

	rc := &hostCtx{ParamBag: core.ParamBag{In: args}, host: h, role: role, perf: perf}
	bodyErr := runBody(body, rc)

	h.sup.Enter()
	h.done[role] = true
	if len(h.done) == len(h.roles) {
		// All roles finished: the performance ends and the next may form.
		h.filled = make(map[ids.RoleRef]bool)
		h.done = make(map[ids.RoleRef]bool)
		for _, mb := range h.mailboxes {
			mb.clear()
		}
	}
	h.sup.Leave()

	if bodyErr != nil {
		return rc.Out, &core.RoleError{Script: h.def.Name(), Role: role, Err: bodyErr}
	}
	return rc.Out, nil
}

func (h *Host) countFilled() int { return len(h.filled) }

// Performances returns the number of performances activated so far.
func (h *Host) Performances() int {
	h.sup.Enter()
	defer h.sup.Leave()
	return h.perf
}

func runBody(body core.RoleBody, rc core.Ctx) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("role body panicked: %v", r)
		}
	}()
	return body(rc)
}

// message is one mailbox entry.
type message struct {
	from ids.RoleRef
	tag  string
	val  any
}

// mailbox is Figure 12's mailbox monitor, generalized to a queue of the
// configured capacity. Several mailboxes may share one monitor (the
// single-monitor packaging); the mutex only guards the queue slice against
// the clear() done by another role's release path.
type mailbox struct {
	m        *monitor.M
	capacity int

	mu    sync.Mutex
	queue []message
}

func (mb *mailbox) len() int {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return len(mb.queue)
}

func (mb *mailbox) push(m message) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	mb.queue = append(mb.queue, m)
}

func (mb *mailbox) takeMatch(match func(message) bool) (message, bool) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for i, m := range mb.queue {
		if match(m) {
			mb.queue = append(mb.queue[:i], mb.queue[i+1:]...)
			return m, true
		}
	}
	return message{}, false
}

func (mb *mailbox) clear() {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	mb.queue = nil
}

// put is Figure 12's PUBLIC PROCEDURE put: WAIT UNTIL there is room, then
// deposit.
func (mb *mailbox) put(m message) {
	mb.m.Enter()
	defer mb.m.Leave()
	mb.m.WaitUntil(func() bool { return mb.len() < mb.capacity })
	mb.push(m)
}

// get is Figure 12's PUBLIC FUNCTION get, generalized to take the first
// message satisfying match.
func (mb *mailbox) get(match func(message) bool) message {
	mb.m.Enter()
	defer mb.m.Leave()
	var got message
	mb.m.WaitUntil(func() bool {
		m, ok := mb.takeMatch(match)
		if ok {
			got = m
		}
		return ok
	})
	return got
}
