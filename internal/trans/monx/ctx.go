package monx

import (
	"context"
	"fmt"

	"github.com/scriptabs/goscript/internal/core"
	"github.com/scriptabs/goscript/internal/ids"
)

// hostCtx executes a role body against the mailbox scheme: a send deposits
// into the peer's mailbox (blocking only while it is full), a receive takes
// a matching message from one's own mailbox (WAIT UNTIL one is present).
type hostCtx struct {
	core.ParamBag
	host *Host
	role ids.RoleRef
	perf int
}

var _ core.Ctx = (*hostCtx)(nil)

// Context returns a background context: monitors have no cancellation.
func (rc *hostCtx) Context() context.Context { return context.Background() }

func (rc *hostCtx) Role() ids.RoleRef { return rc.role }
func (rc *hostCtx) Index() int        { return rc.role.Index }

// PID returns the role's own name: the monitor supervisor does not track
// process identities.
func (rc *hostCtx) PID() ids.PID { return ids.PID(rc.role.String()) }

func (rc *hostCtx) Performance() int { return rc.perf }

func (rc *hostCtx) mailboxOf(r ids.RoleRef) (*mailbox, error) {
	mb, ok := rc.host.mailboxes[r]
	if !ok {
		return nil, fmt.Errorf("%w: %s", core.ErrUnknownRole, r)
	}
	return mb, nil
}

func (rc *hostCtx) Send(to ids.RoleRef, v any) error { return rc.SendTag(to, "", v) }

func (rc *hostCtx) SendTag(to ids.RoleRef, tag string, v any) error {
	mb, err := rc.mailboxOf(to)
	if err != nil {
		return err
	}
	mb.put(message{from: rc.role, tag: tag, val: v})
	return nil
}

// SendAll deposits v into each target's mailbox in turn; under the mailbox
// scheme a send only blocks while the peer's box is full, so the serial loop
// is already cheap.
func (rc *hostCtx) SendAll(tos []ids.RoleRef, v any) error {
	for _, to := range tos {
		if err := rc.SendTag(to, "", v); err != nil {
			return err
		}
	}
	return nil
}

func (rc *hostCtx) Recv(from ids.RoleRef) (any, error) { return rc.RecvTag(from, "") }

func (rc *hostCtx) RecvTag(from ids.RoleRef, tag string) (any, error) {
	if _, err := rc.mailboxOf(from); err != nil {
		return nil, err // unknown sender would block forever
	}
	mb, err := rc.mailboxOf(rc.role)
	if err != nil {
		return nil, err
	}
	m := mb.get(func(m message) bool { return m.from == from && m.tag == tag })
	return m.val, nil
}

func (rc *hostCtx) RecvAny() (ids.RoleRef, string, any, error) {
	mb, err := rc.mailboxOf(rc.role)
	if err != nil {
		return ids.RoleRef{}, "", nil, err
	}
	m := mb.get(func(message) bool { return true })
	return m.from, m.tag, m.val, nil
}

// Select supports receive-only alternatives (a WAIT UNTIL over the union of
// the branch predicates). Send branches are rejected: one monitor cannot
// wait on room in another monitor's mailbox.
func (rc *hostCtx) Select(branches ...core.SelectBranch) (core.Selected, error) {
	type recvBranch struct {
		orig    int
		peer    ids.RoleRef
		anyPeer bool
		tag     string
	}
	var recvs []recvBranch
	for i, b := range branches {
		if !b.Enabled() {
			continue
		}
		if b.IsSend() {
			return core.Selected{}, fmt.Errorf("%w: select with send branches", ErrUnsupported)
		}
		peer, anyPeer := b.BranchPeer()
		if !anyPeer {
			if _, err := rc.mailboxOf(peer); err != nil {
				return core.Selected{}, err
			}
		}
		recvs = append(recvs, recvBranch{orig: i, peer: peer, anyPeer: anyPeer, tag: b.BranchTag()})
	}
	if len(recvs) == 0 {
		return core.Selected{}, core.ErrNoBranches
	}
	mb, err := rc.mailboxOf(rc.role)
	if err != nil {
		return core.Selected{}, err
	}
	matchIdx := -1
	m := mb.get(func(m message) bool {
		for _, rb := range recvs {
			if (rb.anyPeer || rb.peer == m.from) && rb.tag == m.tag {
				matchIdx = rb.orig
				return true
			}
		}
		return false
	})
	return core.Selected{Index: matchIdx, Peer: m.from, Tag: m.tag, Val: m.val}, nil
}

// Terminated reports whether the role has finished in the current
// performance. The "will not be filled" half of the paper's predicate is
// not supported: the monitor embedding has no critical role sets.
func (rc *hostCtx) Terminated(r ids.RoleRef) bool {
	rc.host.sup.Enter()
	defer rc.host.sup.Leave()
	return rc.host.done[r]
}

// Filled reports whether r has enrolled in the current performance.
func (rc *hostCtx) Filled(r ids.RoleRef) bool {
	rc.host.sup.Enter()
	defer rc.host.sup.Leave()
	return rc.host.filled[r]
}

// FamilySize returns the declared extent of a fixed family.
func (rc *hostCtx) FamilySize(name string) int { return rc.host.def.FamilyExtent(name) }
