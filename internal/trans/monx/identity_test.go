package monx

import (
	"sync"
	"testing"

	"github.com/scriptabs/goscript/internal/core"
	"github.com/scriptabs/goscript/internal/ids"
)

// TestHostCtxIdentity pins the monitor adapter's identity view: PID is the
// role's own name (the supervisor tracks no process identities), the
// performance counter reflects the supervisor's count, family extents are
// declared, and contexts are non-nil.
func TestHostCtxIdentity(t *testing.T) {
	type ident struct {
		role ids.RoleRef
		idx  int
		pid  ids.PID
		perf int
		fam  int
	}
	got := make(chan ident, 4)
	def, err := core.NewScript("who").
		Family("w", 2, func(rc core.Ctx) error {
			got <- ident{rc.Role(), rc.Index(), rc.PID(), rc.Performance(), rc.FamilySize("w")}
			if rc.Context() == nil {
				t.Error("nil context")
			}
			return nil
		}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	h, err := New(def)
	if err != nil {
		t.Fatal(err)
	}
	for round := 1; round <= 2; round++ {
		var wg sync.WaitGroup
		for i := 1; i <= 2; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := h.Enroll(ids.Member("w", i), nil); err != nil {
					t.Errorf("w%d: %v", i, err)
				}
			}()
		}
		wg.Wait()
		for i := 0; i < 2; i++ {
			id := <-got
			if id.role.Name != "w" || id.idx != id.role.Index {
				t.Errorf("identity = %+v", id)
			}
			if id.pid != ids.PID(id.role.String()) {
				t.Errorf("PID = %q, want the role's own name", id.pid)
			}
			if id.perf != round {
				t.Errorf("performance = %d, want %d", id.perf, round)
			}
			if id.fam != 2 {
				t.Errorf("FamilySize = %d, want 2", id.fam)
			}
		}
	}
	if h.Performances() != 2 {
		t.Fatalf("Performances = %d, want 2", h.Performances())
	}
}

// TestFilledPredicateOnMonx covers the Filled accessor under the monitor
// supervisor.
func TestFilledPredicateOnMonx(t *testing.T) {
	probe := make(chan [2]bool, 1)
	def, err := core.NewScript("fill").
		Role("a", func(rc core.Ctx) error {
			// b may or may not have enrolled yet; synchronize via recv so
			// b is certainly filled when probed.
			if _, err := rc.Recv(ids.Role("b")); err != nil {
				return err
			}
			probe <- [2]bool{rc.Filled(ids.Role("a")), rc.Filled(ids.Role("b"))}
			return nil
		}).
		Role("b", func(rc core.Ctx) error {
			return rc.Send(ids.Role("a"), 1)
		}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	h, err := New(def)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); _, _ = h.Enroll(ids.Role("a"), nil) }()
	go func() { defer wg.Done(); _, _ = h.Enroll(ids.Role("b"), nil) }()
	wg.Wait()
	both := <-probe
	if !both[0] || !both[1] {
		t.Fatalf("Filled = %v, want both true", both)
	}
}

// TestUnknownMailbox covers the adapter's unknown-role error paths.
func TestUnknownMailbox(t *testing.T) {
	var sendErr, recvErr error
	def, err := core.NewScript("u").
		Role("a", func(rc core.Ctx) error {
			sendErr = rc.Send(ids.Role("ghost"), 1)
			_, recvErr = rc.RecvTag(ids.Role("ghost"), "t")
			return nil
		}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	h, err := New(def)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Enroll(ids.Role("a"), nil); err != nil {
		t.Fatal(err)
	}
	if sendErr == nil || recvErr == nil {
		t.Fatalf("sendErr=%v recvErr=%v, want errors", sendErr, recvErr)
	}
}
