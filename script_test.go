package script_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	script "github.com/scriptabs/goscript"
)

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// TestFacadeQuickstart runs the doc-comment example end to end through the
// public API only.
func TestFacadeQuickstart(t *testing.T) {
	def := script.New("broadcast").
		Role("sender", func(rc script.Ctx) error {
			for i := 1; i <= 3; i++ {
				if err := rc.Send(script.Member("recipient", i), rc.Arg(0)); err != nil {
					return err
				}
			}
			return nil
		}).
		Family("recipient", 3, func(rc script.Ctx) error {
			v, err := rc.Recv(script.Role("sender"))
			rc.SetResult(0, v)
			return err
		}).
		MustBuild()

	ctx := testCtx(t)
	in := script.NewInstance(def)
	defer in.Close()

	type out struct {
		res script.Result
		err error
	}
	chans := make([]chan out, 3)
	for i := 1; i <= 3; i++ {
		i := i
		chans[i-1] = make(chan out, 1)
		go func() {
			res, err := in.Enroll(ctx, script.Enrollment{
				PID:  script.PID(fmt.Sprintf("R%d", i)),
				Role: script.Member("recipient", i),
			})
			chans[i-1] <- out{res, err}
		}()
	}
	if _, err := in.Enroll(ctx, script.Enrollment{
		PID: "T", Role: script.Role("sender"), Args: []any{"hello"},
	}); err != nil {
		t.Fatal(err)
	}
	for i, ch := range chans {
		o := <-ch
		if o.err != nil {
			t.Fatalf("recipient %d: %v", i+1, o.err)
		}
		if o.res.Values[0] != "hello" {
			t.Fatalf("recipient %d got %v", i+1, o.res.Values)
		}
	}
}

func TestFacadePolicyConstantsAndErrors(t *testing.T) {
	if script.DelayedInitiation.String() != "delayed" {
		t.Error("DelayedInitiation alias broken")
	}
	if script.ImmediateTermination.String() != "immediate" {
		t.Error("ImmediateTermination alias broken")
	}
	if !errors.Is(fmt.Errorf("wrap: %w", script.ErrRoleAbsent), script.ErrRoleAbsent) {
		t.Error("error alias broken")
	}
}

func TestFacadePartnerNaming(t *testing.T) {
	ctx := testCtx(t)
	def := script.New("pair").
		Role("a", func(rc script.Ctx) error { return rc.Send(script.Role("b"), 1) }).
		Role("b", func(rc script.Ctx) error {
			_, err := rc.Recv(script.Role("a"))
			return err
		}).
		MustBuild()
	in := script.NewInstance(def, script.WithFairness(script.FIFO, 0))
	defer in.Close()

	done := make(chan error, 1)
	go func() {
		_, err := in.Enroll(ctx, script.Enrollment{
			PID: "P", Role: script.Role("a"),
			With: map[script.RoleRef]script.PIDSet{script.Role("b"): script.Partners("Q")},
		})
		done <- err
	}()
	if _, err := in.Enroll(ctx, script.Enrollment{PID: "Q", Role: script.Role("b")}); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestFacadeTracerOption(t *testing.T) {
	ctx := testCtx(t)
	var log script.TraceLog
	def := script.New("solo").
		Role("r", func(rc script.Ctx) error { return nil }).
		MustBuild()
	in := script.NewInstance(def, script.WithTracer(&log))
	defer in.Close()
	if _, err := in.Enroll(ctx, script.Enrollment{PID: "A", Role: script.Role("r")}); err != nil {
		t.Fatal(err)
	}
	if log.Len() == 0 {
		t.Fatal("tracer recorded nothing")
	}
}
