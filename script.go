// Package script is a Go implementation of the communication abstraction
// proposed by Nissim Francez and Brent Hailpern in "Script: A Communication
// Abstraction Mechanism" (PODC 1983).
//
// A script localizes a *pattern of communication* among a set of formal
// processes called roles. Actual processes enroll into roles — supplying
// data parameters and, optionally, naming their partners — and a collective
// activation of the roles is a performance. The script hides how the
// pattern is implemented: a broadcast script may internally be a star, a
// tree, or a pipeline, without the enrolling processes changing.
//
// This package is the supported public API; it re-exports the native
// runtime from the repository's internal packages. The paper's host-
// language embeddings (CSP, Ada, monitors) and its translation schemes live
// in internal/csp, internal/ada, internal/monitor and internal/trans, and
// are exercised by the example programs and the experiment harness.
//
// # Quick start
//
//	def := script.New("broadcast").
//		Role("sender", func(rc script.Ctx) error {
//			for i := 1; i <= 3; i++ {
//				if err := rc.Send(script.Member("recipient", i), rc.Arg(0)); err != nil {
//					return err
//				}
//			}
//			return nil
//		}).
//		Family("recipient", 3, func(rc script.Ctx) error {
//			v, err := rc.Recv(script.Role("sender"))
//			rc.SetResult(0, v)
//			return err
//		}).
//		MustBuild()
//
//	in := script.NewInstance(def)
//	defer in.Close()
//	// Each participant calls in.Enroll from its own goroutine.
package script

import (
	"time"

	"github.com/scriptabs/goscript/internal/core"
	"github.com/scriptabs/goscript/internal/ids"
	"github.com/scriptabs/goscript/internal/match"
	"github.com/scriptabs/goscript/internal/trace"
)

// Core types, re-exported.
type (
	// Definition is an immutable script definition.
	Definition = core.Definition
	// Builder accumulates a script definition; see New.
	Builder = core.Builder
	// Instance is one runtime instance of a definition.
	Instance = core.Instance
	// Enrollment is a request to play a role.
	Enrollment = core.Enrollment
	// Result reports a completed enrollment.
	Result = core.Result
	// Ctx is the role body's view of its performance.
	Ctx = core.Ctx
	// RoleCtx is the native runtime's Ctx, with the nested-enrollment
	// extension (EnrollIn).
	RoleCtx = core.RoleCtx
	// RoleBody is the program text of one role.
	RoleBody = core.RoleBody
	// SelectBranch is one alternative of a guarded Select.
	SelectBranch = core.SelectBranch
	// Selected reports the outcome of a Select.
	Selected = core.Selected
	// Option configures an Instance.
	Option = core.Option
	// RoleError wraps an error from a role body.
	RoleError = core.RoleError
	// AbortError reports a performance aborted by the runtime (deadline
	// exceeded); it wraps ErrPerformanceAborted and names the culprit role.
	AbortError = core.AbortError
	// OverloadError reports an enrollment or connection shed by a remote
	// host's admission control; it wraps ErrOverloaded and may carry the
	// host's RetryAfter backoff hint.
	OverloadError = core.OverloadError
	// FaultInjector injects controlled latency, dropped wakeups and spurious
	// cancellations for robustness testing; see WithFaultInjection.
	FaultInjector = core.FaultInjector
	// DefinitionError reports an invalid definition.
	DefinitionError = core.DefinitionError
	// Initiation selects when a performance begins.
	Initiation = core.Initiation
	// Termination selects when enrolled processes are released.
	Termination = core.Termination
	// Tracer observes runtime events.
	Tracer = trace.Tracer
	// TraceLog is an in-memory tracer.
	TraceLog = trace.Log
	// AsyncTracer decouples trace recording from the scheduler's critical
	// section via a lock-free ring; see NewAsyncTracer.
	AsyncTracer = trace.Async
	// Sampler decides per performance, at initiation, whether to trace it;
	// see WithSampler.
	Sampler = trace.Sampler
	// TraceID identifies one sampled performance's cross-process timeline.
	TraceID = trace.TraceID

	// PID identifies an enrolling process.
	PID = ids.PID
	// RoleRef names a role or family member.
	RoleRef = ids.RoleRef
	// PIDSet is a set of process identities (partner constraints).
	PIDSet = ids.PIDSet
	// Fairness selects contention resolution.
	Fairness = match.Fairness
)

// Policy constants.
const (
	// DelayedInitiation starts a performance only when a critical role set
	// is jointly enrolled.
	DelayedInitiation = core.DelayedInitiation
	// ImmediateInitiation starts a performance at the first enrollment.
	ImmediateInitiation = core.ImmediateInitiation
	// DelayedTermination frees all processes together.
	DelayedTermination = core.DelayedTermination
	// ImmediateTermination frees each process as its role completes.
	ImmediateTermination = core.ImmediateTermination

	// FIFO serves contending enrollments in arrival order (Ada-style).
	FIFO = match.FIFO
	// Arbitrary resolves contention by seeded random choice (CSP-style).
	Arbitrary = match.Arbitrary
)

// Sentinel errors, re-exported.
var (
	// ErrRoleAbsent is the paper's distinguished value for communication
	// with a role left unfilled by the committed critical role set.
	ErrRoleAbsent = core.ErrRoleAbsent
	// ErrRoleFinished reports communication with a role whose body has
	// returned.
	ErrRoleFinished = core.ErrRoleFinished
	// ErrUnknownRole reports a reference to an undeclared role.
	ErrUnknownRole = core.ErrUnknownRole
	// ErrClosed reports use of a closed instance.
	ErrClosed = core.ErrClosed
	// ErrDraining reports an offer rejected because the instance or pool is
	// draining (see Instance.Drain and Pool.Drain).
	ErrDraining = core.ErrDraining
	// ErrPerformanceAborted reports a performance aborted by the runtime;
	// enrollers receive it wrapped in an *AbortError naming the culprit.
	ErrPerformanceAborted = core.ErrPerformanceAborted
	// ErrOverloaded reports work shed by a remote host's admission control
	// before it was admitted; retrying after the *OverloadError's
	// RetryAfter hint is always safe.
	ErrOverloaded = core.ErrOverloaded
	// ErrNoBranches reports a Select with no enabled branches.
	ErrNoBranches = core.ErrNoBranches
)

// New starts the definition of a script with the given name.
func New(name string) *Builder { return core.NewScript(name) }

// NewInstance creates a runtime instance of def.
func NewInstance(def Definition, opts ...Option) *Instance {
	return core.NewInstance(def, opts...)
}

// WithTracer attaches a tracer to an instance.
func WithTracer(t Tracer) Option { return core.WithTracer(t) }

// NewAsyncTracer wraps sink in a lock-free ring buffer drained by a
// dedicated goroutine, so Record never blocks the scheduler: events are
// dropped (and counted) rather than awaited when the ring is full. size is
// the ring capacity, rounded up to a power of two; pass 0 for the default.
// Call Flush to wait for delivery and Close when the instance is done.
func NewAsyncTracer(sink Tracer, size int) *AsyncTracer {
	if size <= 0 {
		size = trace.DefaultAsyncSize
	}
	return trace.NewAsync(sink, size)
}

// WithSampler installs a trace sampler: each performance is traced (and
// assigned a TraceID, reported in Result.TraceID) only when the sampler
// says so at initiation; everything else records nothing. Combine with
// WithTracer — typically an AsyncTracer — for production tracing at a
// sampled rate.
func WithSampler(s Sampler) Option { return core.WithSampler(s) }

// NewProbabilitySampler samples each performance independently with the
// given probability (0..1). The decision sequence is deterministic for a
// given seed.
func NewProbabilitySampler(fraction float64, seed uint64) Sampler {
	return trace.NewProbabilitySampler(fraction, seed)
}

// NewRateSampler samples up to perSec performances per second (token
// bucket with the given burst). IDs are deterministic for a given seed.
func NewRateSampler(perSec float64, burst int, seed uint64) Sampler {
	return trace.NewRateSampler(perSec, burst, seed)
}

// WithFairness selects the instance's contention policy.
func WithFairness(f Fairness, seed int64) Option { return core.WithFairness(f, seed) }

// WithPerformanceDeadline bounds every performance of the instance: a
// performance that has not completed d after it starts is aborted, its
// blocked co-performers unwinding with an *AbortError that names the
// culprit role. d <= 0 disables the bound. Individual enrollments can
// tighten (never loosen) the bound via Enrollment.Deadline.
func WithPerformanceDeadline(d time.Duration) Option {
	return core.WithPerformanceDeadline(d)
}

// WithFaultInjection attaches a fault injector to an instance; intended for
// robustness tests (see internal/chaos for the seeded implementation).
func WithFaultInjection(fi FaultInjector) Option { return core.WithFaultInjection(fi) }

// Role returns a reference to the scalar role named name.
func Role(name string) RoleRef { return ids.Role(name) }

// Member returns a reference to member i (1-based) of a role family.
func Member(name string, i int) RoleRef { return ids.Member(name, i) }

// Partners builds a partner-constraint set from process identities
// (the paper's "either process A or process B" form when given several).
func Partners(pids ...PID) PIDSet { return ids.NewPIDSet(pids...) }

// Select branch constructors, re-exported.
var (
	// SendTo builds an enabled untagged send branch.
	SendTo = core.SendTo
	// SendTagTo builds an enabled tagged send branch.
	SendTagTo = core.SendTagTo
	// RecvFrom builds an enabled untagged receive branch.
	RecvFrom = core.RecvFrom
	// RecvTagFrom builds an enabled tagged receive branch.
	RecvTagFrom = core.RecvTagFrom
	// RecvFromAnyone builds an enabled receive branch accepting any sender.
	RecvFromAnyone = core.RecvFromAnyone
)
