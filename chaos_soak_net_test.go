//go:build chaos

package script_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/scriptabs/goscript/internal/chaos"
	"github.com/scriptabs/goscript/internal/conform"
	"github.com/scriptabs/goscript/internal/core"
	"github.com/scriptabs/goscript/internal/ids"
	"github.com/scriptabs/goscript/internal/remote"
	"github.com/scriptabs/goscript/internal/trace"
)

// TestChaosSoakNet extends the chaos soak across the wire: every enrollment
// goes through a remote.Host over loopback TCP, with the injector severing
// connections at frame boundaries (disconnect during rendezvous → the
// culprit-attributed abort path), stalling client heartbeats past the
// host's timeout (silent-peer abort path), and delaying frames. The
// hardening contract is the same as the local soak: no deadlock, no lost
// enrollment, a clean final drain, and a conforming trace — plus every
// error a client sees must belong to a known class.
func TestChaosSoakNet(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak is not short")
	}
	dur := 5 * time.Second
	if s := os.Getenv("SCRIPT_CHAOS_SOAK"); s != "" {
		d, err := time.ParseDuration(s)
		if err != nil {
			t.Fatalf("SCRIPT_CHAOS_SOAK=%q: %v", s, err)
		}
		dur = d
	}
	runChaosSoakNet(t, 20260806, dur)
}

func runChaosSoakNet(t *testing.T, seed int64, dur time.Duration) {
	inj := chaos.New(chaos.Config{
		Seed:        seed,
		NetDelayP:   0.05,
		NetDelayMax: 2 * time.Millisecond,
		// Per-frame drop probability; at a handful of frames per enrollment
		// this severs a few percent of them, some mid-rendezvous.
		NetDropP: 0.004,
		// Stalls are drawn up to twice the host's heartbeat timeout, so
		// roughly half the stalled heartbeats look like a dead peer.
		NetStallP:   0.02,
		NetStallMax: 500 * time.Millisecond,
		// Client-side mid-op cuts: with no resume window on these hosts they
		// land on the same culprit-attributed abort path as the drops.
		NetCutP: 0.01,
	})

	def := core.NewScript("chaotic_net").
		Role("a", func(rc core.Ctx) error { return errors.New("local body must not run") }).
		Role("b", func(rc core.Ctx) error { return errors.New("local body must not run") }).
		Initiation(core.DelayedInitiation).
		Termination(core.DelayedTermination).
		MustBuild()

	var log trace.Log
	in := core.NewInstance(def,
		core.WithTracer(&log),
		core.WithPerformanceDeadline(500*time.Millisecond),
	)

	h := remote.NewHost(in, remote.HostConfig{
		HeartbeatTimeout: 250 * time.Millisecond,
		WriteTimeout:     5 * time.Second,
		Faults:           inj,
	})
	if err := h.Listen("127.0.0.1:0"); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	go h.Serve()
	addr := h.Addr().String()

	// A second host serves the same instance pinned to wire protocol v1:
	// clients dialing it advertise v2 and are negotiated down mid-soak, so
	// performances mix v2-multiplexed participants with fallback-v1 ones
	// under the same fault injection.
	hV1 := remote.NewHost(in, remote.HostConfig{
		HeartbeatTimeout:   250 * time.Millisecond,
		WriteTimeout:       5 * time.Second,
		Faults:             inj,
		MaxProtocolVersion: 1,
	})
	if err := hV1.Listen("127.0.0.1:0"); err != nil {
		t.Fatalf("Listen (v1 host): %v", err)
	}
	go hV1.Serve()

	enr := remote.NewEnroller(addr, remote.EnrollerConfig{
		Script:            "chaotic_net",
		HeartbeatInterval: 50 * time.Millisecond,
		Faults:            inj,
	})
	defer enr.Close()
	enrV1 := remote.NewEnroller(hV1.Addr().String(), remote.EnrollerConfig{
		Script:            "chaotic_net",
		HeartbeatInterval: 50 * time.Millisecond,
		Faults:            inj,
	})
	defer enrV1.Close()
	enrollers := []*remote.Enroller{enr, enrV1}

	clientBody := func(role string, rng *rand.Rand, panicky bool) core.RoleBody {
		return func(rc core.Ctx) error {
			if panicky {
				panic("chaos: remote body panics")
			}
			if role == "a" {
				return rc.Send(ids.Role("b"), 1)
			}
			_, err := rc.Recv(ids.Role("a"))
			return err
		}
	}

	const workers = 4 // per role
	var attempts, resolved atomic.Uint64
	stop := time.Now().Add(dur)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		for _, role := range []string{"a", "b"} {
			w, role := w, role
			wg.Add(1)
			go func() {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed + int64(w)*2 + int64(role[0])))
				for time.Now().Before(stop) {
					attempts.Add(1)
					ectx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
					if rng.Intn(10) == 0 {
						cancel() // withdrawn offer / interrupted performance
					}
					_, err := enrollers[rng.Intn(len(enrollers))].Enroll(ectx, core.Enrollment{
						PID:  ids.PID(fmt.Sprintf("%s%d", role, w)),
						Role: ids.Role(role),
						Body: clientBody(role, rng, rng.Intn(25) == 0),
					})
					cancel()
					resolved.Add(1)
					switch {
					case err == nil,
						errors.Is(err, context.Canceled),
						errors.Is(err, context.DeadlineExceeded),
						errors.Is(err, core.ErrPerformanceAborted),
						errors.Is(err, core.ErrDraining),
						errors.Is(err, core.ErrClosed),
						errors.Is(err, remote.ErrConnLost),
						// The enroller's default circuit breaker can open
						// under a burst of severed connections; the fail-fast
						// rejection is a legitimate client-visible class.
						errors.Is(err, remote.ErrCircuitOpen):
					default:
						var re *core.RoleError
						if !errors.As(err, &re) {
							t.Errorf("unexpected enrollment error class: %v", err)
							return
						}
					}
				}
			}()
		}
	}

	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(dur + 30*time.Second):
		t.Fatalf("net chaos soak deadlocked (seed %d): workers still blocked 30s past the workload window", seed)
	}

	hV1.Close()
	dctx, dcancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer dcancel()
	if err := h.Drain(dctx); err != nil {
		t.Fatalf("final Drain = %v (seed %d)", err, seed)
	}
	if !in.Closed() {
		t.Fatalf("instance not closed after final Drain (seed %d)", seed)
	}
	if got, want := resolved.Load(), attempts.Load(); got != want {
		t.Fatalf("lost enrollments: %d attempted, %d resolved (seed %d)", want, got, seed)
	}
	if p := in.PendingEnrollments(); p != 0 {
		t.Fatalf("%d offers still pending after drain (seed %d)", p, seed)
	}

	for _, v := range conform.CheckSemantics(log.Events()) {
		t.Errorf("semantics (seed %d): %s", seed, v)
	}

	netDelays, netDrops, netStalls := inj.NetStats()
	netCuts := inj.NetCutCount()
	t.Logf("seed %d: %d enrollments, %d frame delays, %d dropped conns, %d heartbeat stalls, %d mid-op cuts, %d performances",
		seed, attempts.Load(), netDelays, netDrops, netStalls, netCuts, in.Performances())
	if netDelays+netDrops+netStalls+netCuts == 0 {
		t.Error("network fault injector was never consulted — harness not wired in")
	}
}

// TestChaosSoakNetResume is the tentpole acceptance soak: clients hammer a
// v2 host whose resume window is open while the injector severs their live
// connections mid-op at p=0.02. Every blip must be invisible — zero aborted
// admitted performances, zero ErrConnLost — and the trace must conform with
// no abort events at all.
func TestChaosSoakNetResume(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak is not short")
	}
	runChaosSoakNetChurn(t, 20260807, soakDur(t), true)
}

// TestChaosSoakNetResumeOff is the counterfactual: the identical drive (same
// seed, same cut probability) with the resume window disabled must reproduce
// today's failure taxonomy — cuts surface as ErrConnLost on the cut client
// and culprit-attributed *AbortError on its co-performer, and nothing
// outside the pre-resumption error classes ever appears.
func TestChaosSoakNetResumeOff(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak is not short")
	}
	runChaosSoakNetChurn(t, 20260807, soakDur(t), false)
}

func soakDur(t *testing.T) time.Duration {
	dur := 5 * time.Second
	if s := os.Getenv("SCRIPT_CHAOS_SOAK"); s != "" {
		d, err := time.ParseDuration(s)
		if err != nil {
			t.Fatalf("SCRIPT_CHAOS_SOAK=%q: %v", s, err)
		}
		dur = d
	}
	return dur
}

func runChaosSoakNetChurn(t *testing.T, seed int64, dur time.Duration, resume bool) {
	inj := chaos.New(chaos.Config{
		Seed:        seed,
		NetDelayP:   0.05,
		NetDelayMax: 2 * time.Millisecond,
		// The churn under test: sever the client's live connection at op
		// entry, mid-performance.
		NetCutP: 0.02,
	})

	def := core.NewScript("churn_net").
		Role("a", func(rc core.Ctx) error { return errors.New("local body must not run") }).
		Role("b", func(rc core.Ctx) error { return errors.New("local body must not run") }).
		Initiation(core.DelayedInitiation).
		Termination(core.DelayedTermination).
		MustBuild()

	var log trace.Log
	in := core.NewInstance(def, core.WithTracer(&log))

	cfg := remote.HostConfig{
		HeartbeatTimeout: 250 * time.Millisecond,
		WriteTimeout:     5 * time.Second,
	}
	if resume {
		cfg.ResumeWindow = 5 * time.Second
	}
	h := remote.NewHost(in, cfg)
	if err := h.Listen("127.0.0.1:0"); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	go h.Serve()

	enr := remote.NewEnroller(h.Addr().String(), remote.EnrollerConfig{
		Script:            "churn_net",
		HeartbeatInterval: 50 * time.Millisecond,
		Faults:            inj,
		// The breaker is disabled so the off-case keeps offering through the
		// cut bursts instead of collapsing into fast-fail rejections — both
		// arms then drive the identical schedule, which is what makes the
		// zero-vs-nonzero abort comparison meaningful.
		Breaker: remote.BreakerConfig{FailureThreshold: -1},
	})
	defer enr.Close()

	const workers = 4 // per role
	var attempts, resolved, connLost, aborted atomic.Uint64
	stop := time.Now().Add(dur)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		for _, role := range []string{"a", "b"} {
			w, role := w, role
			wg.Add(1)
			go func() {
				defer wg.Done()
				for time.Now().Before(stop) {
					attempts.Add(1)
					ectx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
					_, err := enr.Enroll(ectx, core.Enrollment{
						PID:  ids.PID(fmt.Sprintf("%s%d", role, w)),
						Role: ids.Role(role),
						Body: func(rc core.Ctx) error {
							if role == "a" {
								return rc.Send(ids.Role("b"), 1)
							}
							_, err := rc.Recv(ids.Role("a"))
							return err
						},
					})
					cancel()
					resolved.Add(1)
					switch {
					case err == nil:
					case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
						// A straggler whose partner pool stopped: the offer was
						// withdrawn before any performance started. Not an
						// abort.
					case errors.Is(err, remote.ErrConnLost):
						connLost.Add(1)
						if resume {
							t.Errorf("ErrConnLost with the resume window open: %v", err)
							return
						}
					case errors.Is(err, core.ErrPerformanceAborted):
						aborted.Add(1)
						if resume {
							t.Errorf("admitted performance aborted with the resume window open: %v", err)
							return
						}
						var ae *core.AbortError
						if errors.As(err, &ae) && !strings.Contains(ae.Reason, "disconnected") {
							t.Errorf("abort reason %q, want the disconnect attribution", ae.Reason)
							return
						}
					default:
						t.Errorf("unexpected enrollment error class (resume=%v): %v", resume, err)
						return
					}
				}
			}()
		}
	}

	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(dur + 60*time.Second):
		t.Fatalf("churn soak deadlocked (seed %d, resume=%v)", seed, resume)
	}

	dctx, dcancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer dcancel()
	if err := h.Drain(dctx); err != nil {
		t.Fatalf("final Drain = %v (seed %d, resume=%v)", err, seed, resume)
	}
	if got, want := resolved.Load(), attempts.Load(); got != want {
		t.Fatalf("lost enrollments: %d attempted, %d resolved (seed %d)", want, got, seed)
	}

	for _, v := range conform.CheckSemantics(log.Events()) {
		t.Errorf("semantics (seed %d, resume=%v): %s", seed, resume, v)
	}
	var traceAborts int
	for _, e := range log.Events() {
		if e.Kind == trace.KindAbort {
			traceAborts++
		}
	}

	cuts := inj.NetCutCount()
	if cuts == 0 {
		t.Errorf("no connection cuts were injected — churn harness not wired in (seed %d)", seed)
	}
	if resume {
		if traceAborts != 0 {
			t.Errorf("resumption-on soak recorded %d abort events, want 0 (seed %d)", traceAborts, seed)
		}
	} else {
		// The counterfactual must show the cuts biting: the same schedule
		// with no grace window produces client-visible connection losses.
		if connLost.Load()+aborted.Load() == 0 {
			t.Errorf("resumption-off soak saw no ErrConnLost/aborts under %d cuts (seed %d)", cuts, seed)
		}
	}
	t.Logf("seed %d resume=%v: %d enrollments, %d cuts, %d conn-lost, %d aborted, %d abort trace events, %d performances",
		seed, resume, attempts.Load(), cuts, connLost.Load(), aborted.Load(), traceAborts, in.Performances())
}
