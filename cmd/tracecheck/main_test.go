package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/scriptabs/goscript/internal/ids"
	"github.com/scriptabs/goscript/internal/trace"
)

func TestGenerateAndCheckRoundTrip(t *testing.T) {
	out := filepath.Join(t.TempDir(), "trace.json")
	var buf bytes.Buffer
	if err := run([]string{"-gen", "star", "-o", out}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "all semantic invariants hold") {
		t.Fatalf("output: %s", buf.String())
	}
	buf.Reset()
	if err := run([]string{"-timeline", out}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"time", "performance 1", "all semantic invariants hold"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, buf.String())
		}
	}
}

func TestDetectsBadTrace(t *testing.T) {
	bad := []trace.Event{
		{Seq: 1, Kind: trace.KindPerfStart, Script: "s", Performance: 1},
		{Seq: 2, Kind: trace.KindStart, Script: "s", Performance: 1, Role: ids.Role("a")},
		{Seq: 3, Kind: trace.KindStart, Script: "s", Performance: 1, Role: ids.Role("a")},
	}
	path := filepath.Join(t.TempDir(), "bad.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteJSON(f, bad); err != nil {
		t.Fatal(err)
	}
	f.Close()
	var buf bytes.Buffer
	if err := run([]string{path}, &buf); err == nil {
		t.Fatal("bad trace must fail")
	}
	if !strings.Contains(buf.String(), "role-filled-once") {
		t.Fatalf("output: %s", buf.String())
	}
}

func TestUsageErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err == nil {
		t.Error("no args must fail")
	}
	if err := run([]string{"-gen", "hexagon"}, &buf); err == nil {
		t.Error("unknown shape must fail")
	}
	if err := run([]string{"/nonexistent/trace.json"}, &buf); err == nil {
		t.Error("missing file must fail")
	}
	if err := run([]string{"-bogus"}, &buf); err == nil {
		t.Error("bad flag must fail")
	}
}

func TestPipelineGenerate(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-gen", "pipeline"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "all semantic invariants hold") {
		t.Fatalf("output: %s", buf.String())
	}
}
