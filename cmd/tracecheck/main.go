// Command tracecheck verifies a recorded script trace (JSON, as written by
// trace.WriteJSON) against the runtime's semantic invariants — the
// Section V verification workflow as a standalone tool.
//
// Usage:
//
//	tracecheck trace.json             # check a recorded trace
//	tracecheck -timeline trace.json   # also print the Figure-1-style timeline
//	tracecheck -gen star -o trace.json   # record a sample trace to check
//
// Exit status 1 when the trace violates any invariant.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"github.com/scriptabs/goscript/internal/conform"
	"github.com/scriptabs/goscript/internal/core"
	"github.com/scriptabs/goscript/internal/ids"
	"github.com/scriptabs/goscript/internal/patterns"
	"github.com/scriptabs/goscript/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tracecheck", flag.ContinueOnError)
	timeline := fs.Bool("timeline", false, "print the trace as a timeline")
	gen := fs.String("gen", "", "generate a sample trace instead of reading one: star | pipeline")
	genOut := fs.String("o", "", "with -gen: write the generated trace to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var events []trace.Event
	switch {
	case *gen != "":
		var err error
		events, err = generate(*gen)
		if err != nil {
			return err
		}
		if *genOut != "" {
			f, err := os.Create(*genOut)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := trace.WriteJSON(f, events); err != nil {
				return err
			}
			fmt.Fprintf(out, "wrote %d events to %s\n", len(events), *genOut)
		}
	case fs.NArg() == 1:
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		events, err = trace.ReadJSON(f)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("usage: tracecheck [-timeline] trace.json | tracecheck -gen star [-o out.json]")
	}

	if *timeline {
		var log trace.Log
		for _, e := range events {
			log.Record(e)
		}
		fmt.Fprint(out, log.Timeline())
	}

	violations := conform.CheckSemantics(events)
	if len(violations) == 0 {
		fmt.Fprintf(out, "%d events: all semantic invariants hold\n", len(events))
		return nil
	}
	for _, v := range violations {
		fmt.Fprintf(out, "violation: %s\n", v)
	}
	return fmt.Errorf("%d violation(s)", len(violations))
}

// generate runs one performance of a sample script under a tracer.
func generate(shape string) ([]trace.Event, error) {
	const n = 3
	var def core.Definition
	switch shape {
	case "star":
		def = patterns.StarBroadcast(n)
	case "pipeline":
		def = patterns.PipelineBroadcast(n)
	default:
		return nil, fmt.Errorf("unknown -gen shape %q (want star or pipeline)", shape)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var log trace.Log
	in := core.NewInstance(def, core.WithTracer(&log))
	defer in.Close()
	var wg sync.WaitGroup
	for i := 1; i <= n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = in.Enroll(ctx, core.Enrollment{
				PID: ids.PID(fmt.Sprintf("P%d", i)), Role: ids.Member(patterns.RoleRecipient, i),
			})
		}()
	}
	if _, err := in.Enroll(ctx, core.Enrollment{
		PID: "T", Role: ids.Role(patterns.RoleSender), Args: []any{"x"},
	}); err != nil {
		return nil, err
	}
	wg.Wait()
	return log.Events(), nil
}
