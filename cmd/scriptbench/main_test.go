package main

import (
	"os"
	"strings"
	"testing"
)

// TestRunOnlyFilter runs a single fast experiment end to end through the
// command's own entry point.
func TestRunOnlyFilter(t *testing.T) {
	tmp, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer tmp.Close()
	if err := run([]string{"-only", "E02", "-timeout", "60s"}, tmp); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(tmp.Name())
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	if !strings.Contains(out, "E02") || !strings.Contains(out, "PASS") {
		t.Fatalf("output missing expected content:\n%s", out)
	}
	if strings.Contains(out, "E03") {
		t.Fatal("-only filter leaked other experiments")
	}
}

func TestRunUnknownOnly(t *testing.T) {
	tmp, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer tmp.Close()
	if err := run([]string{"-only", "E99"}, tmp); err == nil {
		t.Fatal("unknown experiment ID must fail")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}, os.Stdout); err == nil {
		t.Fatal("bad flag must fail")
	}
}
