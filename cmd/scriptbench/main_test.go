package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// TestRunOnlyFilter runs a single fast experiment end to end through the
// command's own entry point.
func TestRunOnlyFilter(t *testing.T) {
	tmp, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer tmp.Close()
	if err := run([]string{"-only", "E02", "-timeout", "60s"}, tmp); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(tmp.Name())
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	if !strings.Contains(out, "E02") || !strings.Contains(out, "PASS") {
		t.Fatalf("output missing expected content:\n%s", out)
	}
	if strings.Contains(out, "E03") {
		t.Fatal("-only filter leaked other experiments")
	}
}

func TestRunUnknownOnly(t *testing.T) {
	tmp, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer tmp.Close()
	if err := run([]string{"-only", "E99"}, tmp); err == nil {
		t.Fatal("unknown experiment ID must fail")
	}
}

// TestRunJSONMode runs the fastest perfbench measurement end to end and
// checks the BENCH file round-trips, including baseline diffing.
func TestRunJSONMode(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-json", "-only", "E2", "-outdir", dir}, os.Stdout); err != nil {
		t.Fatal(err)
	}
	path := dir + "/BENCH_E2.json"
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got map[string]any
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("invalid JSON in %s: %v", path, err)
	}
	if got["id"] != "E2" || got["ns_per_op"].(float64) <= 0 {
		t.Fatalf("unexpected result: %v", got)
	}

	// A second run diffed against the first must record the baseline.
	dir2 := t.TempDir()
	if err := run([]string{"-json", "-only", "E2", "-outdir", dir2, "-baseline", dir}, os.Stdout); err != nil {
		t.Fatal(err)
	}
	data, err = os.ReadFile(dir2 + "/BENCH_E2.json")
	if err != nil {
		t.Fatal(err)
	}
	var diffed map[string]any
	if err := json.Unmarshal(data, &diffed); err != nil {
		t.Fatal(err)
	}
	if diffed["baseline_ns_per_op"].(float64) != got["ns_per_op"].(float64) {
		t.Fatalf("baseline not recorded: %v", diffed)
	}
}

func TestRunJSONUnknownOnly(t *testing.T) {
	if err := run([]string{"-json", "-only", "E99", "-outdir", t.TempDir()}, os.Stdout); err == nil {
		t.Fatal("unknown measurement ID must fail")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}, os.Stdout); err == nil {
		t.Fatal("bad flag must fail")
	}
}
