// Command scriptbench runs the full experiment suite — one experiment per
// figure or comparative claim of the paper (DESIGN.md's E1–E14 index) — and
// prints each result table. EXPERIMENTS.md records a reference run.
//
// With -json it instead runs the scheduler performance acceptance suite
// (internal/perfbench) and writes one BENCH_<ID>.json per measurement into
// -outdir. If -baseline names a directory holding prior BENCH_<ID>.json
// files, each new result also records baseline_ns_per_op and delta_pct
// (positive = faster than the baseline).
//
// Usage:
//
//	scriptbench [-only E05] [-timeout 5m]
//	scriptbench -json [-outdir .] [-baseline old/] [-only E3]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/scriptabs/goscript/internal/experiments"
	"github.com/scriptabs/goscript/internal/perfbench"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("scriptbench", flag.ContinueOnError)
	only := fs.String("only", "", "run only the experiment with this ID (e.g. E05, or E3 with -json)")
	timeout := fs.Duration("timeout", 5*time.Minute, "overall time budget")
	jsonMode := fs.Bool("json", false, "run the performance suite and write BENCH_<ID>.json files")
	outdir := fs.String("outdir", ".", "directory for BENCH_<ID>.json files (with -json)")
	baseline := fs.String("baseline", "", "directory with prior BENCH_<ID>.json files to diff against (with -json)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *jsonMode {
		return runJSON(out, *only, *outdir, *baseline)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	fmt.Fprintln(out, "goscript experiment suite — Francez & Hailpern, \"Script: A Communication Abstraction Mechanism\" (PODC 1983)")
	fmt.Fprintln(out)
	failures := 0
	ran := 0
	for _, entry := range experiments.Suite() {
		if *only != "" && !strings.EqualFold(entry.ID, *only) {
			continue
		}
		tbl := entry.Run(ctx)
		ran++
		fmt.Fprintln(out, tbl.Render())
		if tbl.Err != nil || strings.Contains(tbl.Verdict, "FAIL") {
			failures++
		}
	}
	if ran == 0 {
		return fmt.Errorf("no experiment matches -only=%s", *only)
	}
	if failures > 0 {
		return fmt.Errorf("%d experiment(s) failed", failures)
	}
	fmt.Fprintf(out, "all %d experiments passed\n", ran)
	return nil
}

// runJSON runs the perfbench suite and writes BENCH_<ID>.json files.
func runJSON(out *os.File, only, outdir, baseline string) error {
	ran := 0
	for _, spec := range perfbench.Suite() {
		if only != "" && !strings.EqualFold(spec.ID, only) {
			continue
		}
		fmt.Fprintf(out, "%s %s (%d enrollers)... ", spec.ID, spec.Name, spec.Enrollers)
		res := spec.Run()
		// E5/E6 record their intrinsic comparison run as the baseline; a
		// -baseline directory only fills the experiments that lack one.
		if baseline != "" && res.BaselineNsPerOp == 0 {
			if base, err := readBaseline(filepath.Join(baseline, benchFile(spec.ID))); err == nil && base.NsPerOp > 0 {
				res.BaselineNsPerOp = base.NsPerOp
				res.DeltaPct = (base.NsPerOp - res.NsPerOp) / base.NsPerOp * 100
			}
		}
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		path := filepath.Join(outdir, benchFile(spec.ID))
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "%.0f ns/op", res.NsPerOp)
		if res.BaselineNsPerOp > 0 {
			fmt.Fprintf(out, " (baseline %.0f, %+.1f%%)", res.BaselineNsPerOp, res.DeltaPct)
		}
		if res.Speedup > 0 {
			fmt.Fprintf(out, " (%.2fx vs single instance)", res.Speedup)
		}
		fmt.Fprintf(out, " -> %s\n", path)
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("no measurement matches -only=%s", only)
	}
	return nil
}

func benchFile(id string) string { return "BENCH_" + id + ".json" }

func readBaseline(path string) (perfbench.Result, error) {
	var res perfbench.Result
	data, err := os.ReadFile(path)
	if err != nil {
		return res, err
	}
	err = json.Unmarshal(data, &res)
	return res, err
}
