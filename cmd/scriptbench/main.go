// Command scriptbench runs the full experiment suite — one experiment per
// figure or comparative claim of the paper (DESIGN.md's E1–E14 index) — and
// prints each result table. EXPERIMENTS.md records a reference run.
//
// Usage:
//
//	scriptbench [-only E05] [-timeout 5m]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/scriptabs/goscript/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("scriptbench", flag.ContinueOnError)
	only := fs.String("only", "", "run only the experiment with this ID (e.g. E05)")
	timeout := fs.Duration("timeout", 5*time.Minute, "overall time budget")
	if err := fs.Parse(args); err != nil {
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	fmt.Fprintln(out, "goscript experiment suite — Francez & Hailpern, \"Script: A Communication Abstraction Mechanism\" (PODC 1983)")
	fmt.Fprintln(out)
	failures := 0
	ran := 0
	for _, entry := range experiments.Suite() {
		if *only != "" && !strings.EqualFold(entry.ID, *only) {
			continue
		}
		tbl := entry.Run(ctx)
		ran++
		fmt.Fprintln(out, tbl.Render())
		if tbl.Err != nil || strings.Contains(tbl.Verdict, "FAIL") {
			failures++
		}
	}
	if ran == 0 {
		return fmt.Errorf("no experiment matches -only=%s", *only)
	}
	if failures > 0 {
		return fmt.Errorf("%d experiment(s) failed", failures)
	}
	fmt.Fprintf(out, "all %d experiments passed\n", ran)
	return nil
}
