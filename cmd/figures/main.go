// Command figures replays each of the paper's twelve figures on this
// repository's runtimes and prints a narrative of what happened: Figure 1's
// timeline, Figure 2's repeated enrollment, the three example scripts
// (Figures 3–5), the CSP embedding and translation (Figures 6–7), the Ada
// embedding and translation (Figures 8–11), and the monitor mailboxes
// (Figure 12).
//
// Usage:
//
//	figures [-fig 1] [-timeout 2m]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"github.com/scriptabs/goscript/internal/ada"
	"github.com/scriptabs/goscript/internal/core"
	"github.com/scriptabs/goscript/internal/csp"
	"github.com/scriptabs/goscript/internal/ids"
	"github.com/scriptabs/goscript/internal/patterns"
	"github.com/scriptabs/goscript/internal/trace"
	"github.com/scriptabs/goscript/internal/trans/adax"
	"github.com/scriptabs/goscript/internal/trans/cspx"
	"github.com/scriptabs/goscript/internal/trans/monx"
)

func main() {
	fig := flag.Int("fig", 0, "show only this figure (1..12; 0 = all)")
	timeout := flag.Duration("timeout", 2*time.Minute, "overall time budget")
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	type figure struct {
		num   int
		title string
		run   func(ctx context.Context, w io.Writer) error
	}
	figures := []figure{
		{1, "Consecutive performances", figure1},
		{2, "Repeated enrollment (u=x, y=v)", figure2},
		{3, "Synchronized star broadcast", figure3},
		{4, "Pipeline broadcast", figure4},
		{5, "Database lock manager", figure5},
		{6, "Broadcast in CSP", figure6},
		{7, "CSP supervisor p_s", figure7},
		{8, "Broadcast in Ada (reverse broadcast)", figure8},
		{9, "Ada translation (supervisor + role tasks)", figure9to11},
		{12, "Mailbox broadcast with monitors", figure12},
	}
	for _, f := range figures {
		if *fig != 0 && *fig != f.num {
			continue
		}
		if f.num == 9 {
			fmt.Printf("--- Figures 9-11: %s ---\n", f.title)
		} else {
			fmt.Printf("--- Figure %d: %s ---\n", f.num, f.title)
		}
		if err := f.run(ctx, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "figure %d: %v\n", f.num, err)
			os.Exit(1)
		}
		fmt.Println()
	}
}

// figure1 replays Figure 1's timeline with six processes and three roles.
func figure1(ctx context.Context, w io.Writer) error {
	gate := make(chan struct{})
	def, err := core.NewScript("s").
		Role("p", func(rc core.Ctx) error { return nil }).
		Role("q", func(rc core.Ctx) error { <-gate; return nil }).
		Role("r", func(rc core.Ctx) error { <-gate; return nil }).
		Initiation(core.ImmediateInitiation).
		Termination(core.ImmediateTermination).
		Build()
	if err != nil {
		return err
	}
	var log trace.Log
	in := core.NewInstance(def, core.WithTracer(&log))
	defer in.Close()

	enroll := func(pid ids.PID, role string) <-chan error {
		ch := make(chan error, 1)
		go func() {
			_, err := in.Enroll(ctx, core.Enrollment{PID: pid, Role: ids.Role(role)})
			ch <- err
		}()
		return ch
	}
	chA := enroll("A", "p")
	chB := enroll("B", "q")
	chC := enroll("C", "r")
	if err := <-chA; err != nil {
		return err
	}
	chD := enroll("D", "p")
	time.Sleep(20 * time.Millisecond) // D is now waiting, as the figure shows
	close(gate)
	for _, ch := range []<-chan error{chB, chC, chD} {
		if err := <-ch; err != nil {
			return err
		}
	}
	fmt.Fprint(w, log.Timeline())
	return nil
}

// figure2 replays Figure 2: A broadcasts x then v; B receives u then y.
func figure2(ctx context.Context, w io.Writer) error {
	in := core.NewInstance(patterns.StarBroadcast(2))
	defer in.Close()
	go func() {
		for round := 1; round <= 2; round++ {
			_, _ = in.Enroll(ctx, core.Enrollment{
				PID: ids.PID(fmt.Sprintf("other%d", round)), Role: ids.Member("recipient", 2),
			})
		}
	}()
	go func() {
		for _, x := range []any{"x", "v"} {
			_, _ = in.Enroll(ctx, core.Enrollment{PID: "A", Role: ids.Role("sender"), Args: []any{x}})
		}
	}()
	var vals []any
	for round := 0; round < 2; round++ {
		res, err := in.Enroll(ctx, core.Enrollment{PID: "B", Role: ids.Member("recipient", 1)})
		if err != nil {
			return err
		}
		vals = append(vals, res.Values[0])
	}
	fmt.Fprintf(w, "A: ENROLL AS transmitter(x); ENROLL AS transmitter(v)\n")
	fmt.Fprintf(w, "B: ENROLL AS recipient(u);   ENROLL AS recipient(y)\n")
	fmt.Fprintf(w, "result: u=%v (want x), y=%v (want v)\n", vals[0], vals[1])
	return nil
}

// runBroadcastFigure drives one performance of a broadcast script.
func runBroadcastFigure(ctx context.Context, w io.Writer, def core.Definition, n int, value string) error {
	var log trace.Log
	in := core.NewInstance(def, core.WithTracer(&log))
	defer in.Close()
	var wg sync.WaitGroup
	for i := 1; i <= n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := in.Enroll(ctx, core.Enrollment{
				PID: ids.PID(fmt.Sprintf("P%d", i)), Role: ids.Member("recipient", i),
			})
			if err == nil {
				fmt.Fprintf(w, "recipient[%d] received %v\n", i, res.Values[0])
			}
		}()
	}
	if _, err := in.Enroll(ctx, core.Enrollment{
		PID: "T", Role: ids.Role("sender"), Args: []any{value},
	}); err != nil {
		return err
	}
	wg.Wait()
	sends := log.Filter(func(e trace.Event) bool { return e.Kind == trace.KindSend })
	fmt.Fprintf(w, "communication pattern (%d sends):", len(sends))
	for _, e := range sends {
		fmt.Fprintf(w, " %s->%s", e.Role, e.Peer)
	}
	fmt.Fprintln(w)
	return nil
}

func figure3(ctx context.Context, w io.Writer) error {
	fmt.Fprintln(w, "SCRIPT star_broadcast; INITIATION: DELAYED; TERMINATION: DELAYED")
	return runBroadcastFigure(ctx, w, patterns.StarBroadcast(5), 5, "data")
}

func figure4(ctx context.Context, w io.Writer) error {
	fmt.Fprintln(w, "SCRIPT pipeline_broadcast; INITIATION: IMMEDIATE; TERMINATION: IMMEDIATE")
	return runBroadcastFigure(ctx, w, patterns.PipelineBroadcast(5), 5, "data")
}

// figure5 drives the lock-manager script: one lock to read, k locks to
// write, with an absent writer in the first performance.
func figure5(ctx context.Context, w io.Writer) error {
	const k = 3
	strat := patterns.OneReadAllWrite()
	mctx, cancel := context.WithCancel(ctx)
	defer cancel()
	in := core.NewInstance(patterns.LockManager(k, strat))
	var wg sync.WaitGroup
	for i := 1; i <= k; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = patterns.RunManager(mctx, in, ids.PID(fmt.Sprintf("M%d", i)), i, strat.NewTable())
		}()
	}
	defer func() { cancel(); in.Close(); wg.Wait() }()

	g, err := patterns.RequestLock(ctx, in, "PR", "reader-1", "item", false)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "reader locks 'item' (1 of %d managers needed):  granted=%v\n", k, g)
	g, err = patterns.RequestLock(ctx, in, "PW", "writer-1", "item", true)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "writer locks 'item' (%d of %d managers needed): granted=%v (reader holds it)\n", k, k, g)
	if err := patterns.ReleaseLock(ctx, in, "PR", "reader-1", "item", false); err != nil {
		return err
	}
	g, err = patterns.RequestLock(ctx, in, "PW", "writer-1", "item", true)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "after the reader releases, writer retries:    granted=%v\n", g)
	return nil
}

// figure6 runs the CSP transcription of Figure 6.
func figure6(ctx context.Context, w io.Writer) error {
	const n = 5
	var mu sync.Mutex
	received := map[int]any{}
	sys := csp.NewSystem().
		Process("transmitter", func(p *csp.Proc) error {
			sent := make([]bool, n+1)
			return p.Rep(func() []csp.Guard {
				guards := make([]csp.Guard, 0, n)
				for k := 1; k <= n; k++ {
					k := k
					guards = append(guards, csp.OnSend(csp.Name("recipient", k), "", "x",
						func(any) error { sent[k] = true; return nil }).When(!sent[k]))
				}
				return guards
			})
		}).
		ProcessArray("recipient", n, func(p *csp.Proc) error {
			v, err := p.Recv("transmitter")
			if err != nil {
				return err
			}
			mu.Lock()
			received[p.Index()] = v
			mu.Unlock()
			return nil
		})
	if err := sys.Run(ctx); err != nil {
		return err
	}
	fmt.Fprintln(w, "transmitter:: *[ (k=1,5) ¬sent[k]; recipient[k]!x → sent[k]:=true ]")
	for i := 1; i <= n; i++ {
		fmt.Fprintf(w, "recipient[%d]?y = %v\n", i, received[i])
	}
	return nil
}

// figure7 runs the broadcast through the CSP translation's supervisor.
func figure7(ctx context.Context, w io.Writer) error {
	const n = 3
	def := patterns.StarBroadcast(n)
	host, err := cspx.New(def)
	if err != nil {
		return err
	}
	binding := map[ids.RoleRef]string{ids.Role("sender"): "T"}
	for i := 1; i <= n; i++ {
		binding[ids.Member("recipient", i)] = csp.Name("q", i)
	}
	var mu sync.Mutex
	got := map[int]any{}
	sys := csp.NewSystem().
		Process("T", func(p *csp.Proc) error {
			_, err := host.Enroll(p, ids.Role("sender"), binding, []any{"via-p_s"})
			return err
		}).
		ProcessArray("q", n, func(p *csp.Proc) error {
			outs, err := host.Enroll(p, ids.Member("recipient", p.Index()), binding, nil)
			if err != nil {
				return err
			}
			mu.Lock()
			got[p.Index()] = outs[0]
			mu.Unlock()
			return nil
		})
	host.AddSupervisor(sys, 1)
	if err := sys.Run(ctx); err != nil {
		return err
	}
	fmt.Fprintf(w, "supervisor %s coordinated 1 performance of %d roles (start_s/end_s counting)\n",
		host.SupervisorName(), n+1)
	for i := 1; i <= n; i++ {
		fmt.Fprintf(w, "q[%d] enrolled as recipient[%d] and received %v\n", i, i, got[i])
	}
	return nil
}

// figure8 runs the reverse broadcast on the Ada substrate.
func figure8(ctx context.Context, w io.Writer) error {
	const n = 5
	p := ada.NewProgram()
	sender := p.Task("sender", nil)
	receive := sender.Entry("receive")
	sender.SetBody(func(tk *ada.Task) error {
		for completed := 0; completed < n; completed++ {
			if err := tk.Accept(receive, func([]any) ([]any, error) {
				return []any{"data"}, nil
			}); err != nil {
				return err
			}
		}
		return nil
	})
	var mu sync.Mutex
	order := []string{}
	for i := 1; i <= n; i++ {
		i := i
		p.Task(fmt.Sprintf("r%d", i), func(tk *ada.Task) error {
			outs, err := receive.Call(tk.Context())
			if err != nil {
				return err
			}
			mu.Lock()
			order = append(order, fmt.Sprintf("r%d:=%v", i, outs[0]))
			mu.Unlock()
			return nil
		})
	}
	if err := p.Run(ctx); err != nil {
		return err
	}
	fmt.Fprintln(w, "the recipients CALL the sender's receive entry (reverse broadcast):")
	fmt.Fprintf(w, "service order: %v\n", order)
	return nil
}

// figure9to11 runs the Ada translation: role tasks with start/stop entries
// and the supervisor task.
func figure9to11(ctx context.Context, w io.Writer) error {
	const n = 3
	def := patterns.StarBroadcast(n)
	host, err := adax.New(def)
	if err != nil {
		return err
	}
	if err := host.Start(ctx); err != nil {
		return err
	}
	var wg sync.WaitGroup
	results := make([]any, n+1)
	for i := 1; i <= n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			outs, err := host.Enroll(ctx, ids.Member("recipient", i), nil)
			if err == nil {
				results[i] = outs[0]
			}
		}()
	}
	if _, err := host.Enroll(ctx, ids.Role("sender"), []any{"via-tasks"}); err != nil {
		return err
	}
	wg.Wait()
	if err := host.Shutdown(); err != nil {
		return err
	}
	fmt.Fprintf(w, "translation created %d tasks (m+1): one per role plus the supervisor\n", host.TaskCount())
	fmt.Fprintln(w, "each enrollment became the entry-call pair  s_r.start(in); s_r.stop(out)")
	for i := 1; i <= n; i++ {
		fmt.Fprintf(w, "recipient[%d] stop entry returned %v\n", i, results[i])
	}
	return nil
}

// figure12 runs the mailbox broadcast on the monitor host.
func figure12(ctx context.Context, w io.Writer) error {
	const n = 5
	host, err := monx.New(patterns.StarBroadcast(n))
	if err != nil {
		return err
	}
	var wg sync.WaitGroup
	results := make([]any, n+1)
	for i := 1; i <= n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			outs, err := host.Enroll(ids.Member("recipient", i), nil)
			if err == nil {
				results[i] = outs[0]
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = host.Enroll(ids.Role("sender"), []any{"via-mailboxes"})
	}()
	wg.Wait()
	fmt.Fprintln(w, "sender: FOR r := 1 TO 5 DO recipient[r].mbox.put(data)")
	for i := 1; i <= n; i++ {
		fmt.Fprintf(w, "recipient[%d].mbox.get(data) = %v\n", i, results[i])
	}
	return nil
}
