package main

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"github.com/scriptabs/goscript/internal/core"
	"github.com/scriptabs/goscript/internal/ids"
	"github.com/scriptabs/goscript/internal/registry"
	"github.com/scriptabs/goscript/internal/remote"
)

// fleetHost is one scriptd child process and its scraped addresses.
type fleetHost struct {
	cmd   *exec.Cmd
	addr  string // serve address
	gaddr string // gossip address
	maddr string // metrics address
	tail  chan string
}

// startFleetHost spawns a scriptd child joined to the gossip registry.
// peers seeds its gossip node; the first host of a fleet passes none.
func startFleetHost(t *testing.T, bin string, peers []string) *fleetHost {
	t.Helper()
	args := []string{
		"-addr", "127.0.0.1:0", "-script", "star_broadcast", "-n", "3",
		"-registry", "gossip:127.0.0.1:0", "-gossip-interval", "25ms",
		"-metrics-addr", "127.0.0.1:0",
	}
	if len(peers) > 0 {
		args = append(args, "-gossip-peers", strings.Join(peers, ","))
	}
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatalf("StdoutPipe: %v", err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start scriptd: %v", err)
	}
	t.Cleanup(func() { cmd.Process.Kill() })

	h := &fleetHost{cmd: cmd, tail: make(chan string, 1)}
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		if a, ok := strings.CutPrefix(sc.Text(), "listening on "); ok {
			h.addr = a
		}
		if a, ok := strings.CutPrefix(sc.Text(), "gossip on "); ok {
			h.gaddr = a
		}
		if a, ok := strings.CutPrefix(sc.Text(), "metrics on "); ok {
			h.maddr = a
			break // metrics prints last in the startup banner
		}
	}
	if h.addr == "" || h.gaddr == "" || h.maddr == "" {
		t.Fatalf("scriptd startup banner incomplete (addr=%q gossip=%q metrics=%q, scan err %v)",
			h.addr, h.gaddr, h.maddr, sc.Err())
	}
	go func() {
		var rest []string
		for sc.Scan() {
			rest = append(rest, sc.Text())
		}
		h.tail <- strings.Join(rest, "\n")
	}()
	return h
}

// scrapeMetric fetches one metric line's value from a host's /metrics page.
func scrapeMetric(t *testing.T, maddr, name string) (int64, bool) {
	t.Helper()
	resp, err := http.Get("http://" + maddr + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read /metrics: %v", err)
	}
	for _, line := range strings.Split(string(body), "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseInt(strings.TrimSpace(rest), 10, 64)
			if err != nil {
				t.Fatalf("parse %s value %q: %v", name, rest, err)
			}
			return v, true
		}
	}
	return 0, false
}

// TestFleetEndToEnd is the fleet acceptance test: three scriptd processes
// discover each other over gossip, a client process discovers all three
// through a gossip-backed registry subscription and soaks them with
// round-robin EnrollBloc casts, and one host is SIGTERMed mid-soak. Every
// bloc must complete (sheds and draining rejections reroute under retry),
// the killed host must drain cleanly, and no admitted performance may
// abort anywhere in the fleet.
func TestFleetEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes; skipped with -short")
	}

	bin := filepath.Join(t.TempDir(), "scriptd")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("go build scriptd: %v", err)
	}

	h1 := startFleetHost(t, bin, nil)
	h2 := startFleetHost(t, bin, []string{h1.gaddr})
	h3 := startFleetHost(t, bin, []string{h1.gaddr})

	// The client joins the gossip plane as a non-announcing member and lets
	// the registry subscription drive its host set.
	g, err := registry.NewGossip(registry.GossipConfig{
		Bind:     "127.0.0.1:0",
		Seeds:    []string{h1.gaddr},
		Interval: 25 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("client gossip: %v", err)
	}
	defer g.Close()
	enr := remote.NewEnrollerRegistry(g, remote.EnrollerConfig{
		Script:   "star_broadcast",
		Balancer: remote.NewRoundRobin(),
		Retry: remote.RetryPolicy{
			MaxAttempts: 200,
			BaseBackoff: time.Millisecond,
			MaxBackoff:  10 * time.Millisecond,
			Seed:        42,
		},
	})
	defer enr.Close()

	deadline := time.Now().Add(15 * time.Second)
	for len(enr.Hosts()) != 3 {
		if time.Now().After(deadline) {
			t.Fatalf("enroller discovered %d hosts, want 3: %v", len(enr.Hosts()), enr.Hosts())
		}
		time.Sleep(10 * time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	const rounds, killAt = 24, 8
	for r := 0; r < rounds; r++ {
		if r == killAt {
			// Kill one host mid-soak: it withdraws its announcement, drains
			// in-flight work, and exits; the soak must not notice beyond
			// rerouted retries.
			if err := h2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
				t.Fatalf("SIGTERM h2: %v", err)
			}
		}
		msg := fmt.Sprintf("round-%d", r)
		members := []core.Enrollment{{
			PID:  ids.PID(fmt.Sprintf("announcer-%d", r)),
			Role: ids.Role("sender"),
			Body: func(rc core.Ctx) error {
				for i := 1; i <= 3; i++ {
					if err := rc.Send(ids.Member("recipient", i), msg); err != nil {
						return err
					}
				}
				return nil
			},
		}}
		for i := 1; i <= 3; i++ {
			i := i
			members = append(members, core.Enrollment{
				PID:  ids.PID(fmt.Sprintf("listener-%d-%d", r, i)),
				Role: ids.Member("recipient", i),
				Body: func(rc core.Ctx) error {
					v, err := rc.Recv(ids.Role("sender"))
					if err != nil {
						return err
					}
					rc.SetResult(0, v)
					return nil
				},
			})
		}
		res, err := enr.EnrollBloc(ctx, members)
		if err != nil {
			t.Fatalf("bloc %d: %v", r, err)
		}
		for i := 1; i < len(res); i++ {
			if res[i].Values[0] != msg {
				t.Fatalf("bloc %d listener %d got %v, want %q", r, i, res[i].Values[0], msg)
			}
		}
	}

	// The killed host drained cleanly: no abandoned work, clean exit.
	out := <-h2.tail
	if err := h2.cmd.Wait(); err != nil {
		t.Fatalf("killed host exited uncleanly: %v (output %q)", err, out)
	}
	if !strings.Contains(out, "drained") {
		t.Fatalf("killed host output = %q, want a drain acknowledgement", out)
	}

	// Both survivors performed work and nothing aborted anywhere.
	for i, h := range []*fleetHost{h1, h3} {
		perfs, ok := scrapeMetric(t, h.maddr, "scriptd_instance_performances")
		if !ok || perfs == 0 {
			t.Errorf("survivor %d performed %d performances (found=%v), want >0 (balancing)", i, perfs, ok)
		}
		if aborted, ok := scrapeMetric(t, h.maddr, "script_performances_aborted_total"); ok && aborted != 0 {
			t.Errorf("survivor %d aborted %d admitted performances, want 0", i, aborted)
		}
		// The survivors evict the killed host on gossip silence.
		evicted := time.Now().Add(15 * time.Second)
		for {
			members, ok := scrapeMetric(t, h.maddr, "scriptd_registry_members")
			if ok && members <= 2 {
				break
			}
			if time.Now().After(evicted) {
				t.Errorf("survivor %d still counts %d registry members after the kill", i, members)
				break
			}
			time.Sleep(25 * time.Millisecond)
		}
	}
}
