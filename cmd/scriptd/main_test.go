package main

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/scriptabs/goscript/internal/core"
	"github.com/scriptabs/goscript/internal/ids"
	"github.com/scriptabs/goscript/internal/patterns"
	"github.com/scriptabs/goscript/internal/remote"
)

func TestList(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatalf("run -list: %v", err)
	}
	got := strings.Fields(buf.String())
	want := patterns.Names()
	if len(got) != len(want) {
		t.Fatalf("-list printed %d names, want %d: %q", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("-list[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestUnknownScript(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-script", "no_such_pattern"}, &buf); err == nil ||
		!strings.Contains(err.Error(), "no_such_pattern") {
		t.Fatalf("run -script no_such_pattern = %v, want unknown-script error", err)
	}
}

// TestEndToEnd is the multi-process acceptance test: a scriptd child
// process serves the quickstart broadcast script, and this process plays
// all four quickstart parties over loopback TCP via remote.Enroller —
// three listeners enrolling for two rounds and an announcer broadcasting
// "hello" then "world". A final SIGINT must drain the daemon cleanly.
func TestEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a child process; skipped with -short")
	}

	bin := filepath.Join(t.TempDir(), "scriptd")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("go build scriptd: %v", err)
	}

	daemon := exec.Command(bin, "-addr", "127.0.0.1:0", "-script", "star_broadcast", "-n", "3",
		"-metrics-addr", "127.0.0.1:0", "-trace-sample", "1", "-trace-seed", "7")
	stdout, err := daemon.StdoutPipe()
	if err != nil {
		t.Fatalf("StdoutPipe: %v", err)
	}
	daemon.Stderr = os.Stderr
	if err := daemon.Start(); err != nil {
		t.Fatalf("start scriptd: %v", err)
	}
	defer daemon.Process.Kill()

	// Scrape the resolved listen and metrics addresses from the daemon's
	// stdout ("metrics on" prints after "listening on"), then keep reading so
	// the final drain lines are captured too.
	sc := bufio.NewScanner(stdout)
	addr, maddr := "", ""
	for sc.Scan() {
		if a, ok := strings.CutPrefix(sc.Text(), "listening on "); ok {
			addr = a
		}
		if a, ok := strings.CutPrefix(sc.Text(), "metrics on "); ok {
			maddr = a
			break
		}
	}
	if addr == "" || maddr == "" {
		t.Fatalf("scriptd exited without printing its addresses (scan err %v)", sc.Err())
	}
	tail := make(chan string, 1)
	go func() {
		var rest []string
		for sc.Scan() {
			rest = append(rest, sc.Text())
		}
		tail <- strings.Join(rest, "\n")
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	enr := remote.NewEnroller(addr, remote.EnrollerConfig{Script: "star_broadcast"})
	defer enr.Close()

	// The quickstart logic, with every party in this process and the script
	// machinery in the daemon. Values[0] of each listener's Result must match
	// what the announcer sent in that performance.
	var mu sync.Mutex
	byPerf := map[int][]any{} // performance -> values seen by listeners
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 1; i <= 3; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 1; round <= 2; round++ {
				res, err := enr.Enroll(ctx, core.Enrollment{
					PID:  ids.PID(fmt.Sprintf("listener-%d", i)),
					Role: ids.Member("recipient", i),
					Body: func(rc core.Ctx) error {
						v, err := rc.Recv(ids.Role("sender"))
						if err != nil {
							return err
						}
						rc.SetResult(0, v)
						return nil
					},
				})
				if err != nil {
					errs <- fmt.Errorf("listener-%d round %d: %w", i, round, err)
					return
				}
				mu.Lock()
				byPerf[res.Performance] = append(byPerf[res.Performance], res.Values[0])
				mu.Unlock()
			}
		}()
	}
	for _, msg := range []string{"hello", "world"} {
		msg := msg
		if _, err := enr.Enroll(ctx, core.Enrollment{
			PID:  "announcer",
			Role: ids.Role("sender"),
			Body: func(rc core.Ctx) error {
				for i := 1; i <= 3; i++ {
					if err := rc.Send(ids.Member("recipient", i), msg); err != nil {
						return err
					}
				}
				return nil
			},
		}); err != nil {
			t.Fatalf("announcer %q: %v", msg, err)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	if len(byPerf) != 2 {
		t.Fatalf("listeners saw %d performances, want 2: %v", len(byPerf), byPerf)
	}
	seen := map[any]bool{}
	for perf, vals := range byPerf {
		if len(vals) != 3 {
			t.Errorf("performance %d delivered to %d listeners, want 3", perf, len(vals))
		}
		for _, v := range vals {
			if v != vals[0] {
				t.Errorf("performance %d mixed broadcasts: %v", perf, vals)
			}
		}
		seen[vals[0]] = true
	}
	if !seen["hello"] || !seen["world"] {
		t.Errorf("broadcast values = %v, want hello and world", byPerf)
	}

	// The metrics endpoint must be live and reflect the work just done: two
	// completed performances and at least one served connection.
	resp, err := http.Get("http://" + maddr + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read /metrics: %v", err)
	}
	for _, want := range []string{
		"script_performances_completed_total 2",
		"scriptd_host_conns",
		"trace_sampled_total",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}

	// Graceful shutdown: SIGINT → drain → clean exit. The pipe must be read
	// to EOF before Wait, which closes it.
	if err := daemon.Process.Signal(os.Interrupt); err != nil {
		t.Fatalf("SIGINT: %v", err)
	}
	out := <-tail
	if err := daemon.Wait(); err != nil {
		t.Fatalf("scriptd exited uncleanly: %v", err)
	}
	if !strings.Contains(out, "drained") {
		t.Errorf("daemon output after startup = %q, want a drain acknowledgement", out)
	}
}
