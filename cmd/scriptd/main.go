// Command scriptd serves a script over TCP: it builds one of the named
// pattern definitions (internal/patterns), wraps it in a remote.Host, and
// accepts remote.Enroller connections until interrupted. Each enrolling
// process supplies its own role body; scriptd only runs the shared
// performance machinery — scheduling, rendezvous, abort, drain.
//
// Usage:
//
//	scriptd -script star_broadcast -n 3 [-addr 127.0.0.1:0] [-deadline 5s]
//	scriptd -list
//
// The resolved listen address is printed to stdout as "listening on ADDR"
// so callers binding port 0 can scrape it. SIGINT/SIGTERM triggers a
// graceful drain: in-flight performances finish, new offers are rejected
// with ErrDraining, then the process exits.
//
// Admission control: -max-conns, -max-enrollments, and -max-pending-offers
// cap the host's concurrent connections, admitted enrollments, and pending
// offer backlog; work over a cap is shed fast with ErrOverloaded carrying
// the -retry-after backoff hint, and in-flight performances are never
// aborted by shedding.
//
// Observability: -metrics-addr starts an HTTP listener exposing the
// process's always-on counters (performances, sheds, lane hits, wire
// versions, trace drops) in Prometheus text format at /metrics, plus the
// host's live gauges and Go's expvar at /debug/vars. The resolved address
// is printed as "metrics on ADDR". -trace-sample enables sampled tracing of
// the served performances.
//
// Fleet: -registry joins a cluster registry and announces this host (its
// serve address, script name, and a live load digest refreshed every
// announcement). "gossip:BIND" starts a UDP gossip node on BIND seeded from
// -gossip-peers and prints the resolved address as "gossip on ADDR";
// "static:FILE" re-reads a member file. -announce overrides the announced
// serve address (for NAT or 0.0.0.0 binds). A signal-triggered drain
// withdraws the announcement first, so clients stop routing here while
// in-flight performances finish.
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/scriptabs/goscript/internal/core"
	"github.com/scriptabs/goscript/internal/metrics"
	"github.com/scriptabs/goscript/internal/patterns"
	"github.com/scriptabs/goscript/internal/registry"
	"github.com/scriptabs/goscript/internal/remote"
	"github.com/scriptabs/goscript/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("scriptd", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:0", "TCP address to listen on (port 0 picks a free port)")
	script := fs.String("script", "star_broadcast", "pattern definition to serve (see -list)")
	n := fs.Int("n", 3, "pattern size parameter (recipients, parties, capacity, ...)")
	deadline := fs.Duration("deadline", 0, "per-performance deadline (0 disables)")
	hbTimeout := fs.Duration("heartbeat-timeout", remote.DefaultHeartbeatTimeout,
		"abort a performance whose enroller has been silent this long")
	resumeWindow := fs.Duration("resume-window", 0,
		"park a v2 conversation this long after a connection loss, awaiting RESUME (0 disables session resumption)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "how long a signal-triggered drain may take")
	maxConns := fs.Int("max-conns", 0, "cap on concurrently-served connections (0 = unlimited)")
	maxEnrollments := fs.Int("max-enrollments", 0, "cap on concurrently-admitted enrollments (0 = unlimited)")
	maxPending := fs.Int("max-pending-offers", 0, "cap on pending (unmatched) offers (0 = unlimited)")
	retryAfter := fs.Duration("retry-after", remote.DefaultRetryAfter,
		"backoff hint carried by overload rejections (negative disables the hint)")
	maxProto := fs.Int("max-proto", 0,
		"highest SCRW protocol version to negotiate (0 = newest; 1 pins the JSON v1 wire)")
	metricsAddr := fs.String("metrics-addr", "",
		"TCP address for the /metrics and /debug/vars HTTP endpoint (empty disables; port 0 picks a free port)")
	sampleFrac := fs.Float64("trace-sample", 0,
		"fraction of performances to trace, 0..1 (0 disables sampled tracing)")
	sampleSeed := fs.Uint64("trace-seed", 1, "seed for the deterministic trace sampler")
	registrySpec := fs.String("registry", "",
		`cluster registry to join: "gossip:BIND-ADDR" (UDP gossip node) or "static:FILE" (member file, re-read periodically); empty disables`)
	announceAddr := fs.String("announce", "",
		"address to announce to the registry (default: the resolved listen address)")
	gossipPeers := fs.String("gossip-peers", "",
		"comma-separated seed gossip addresses of other hosts (with -registry gossip:...)")
	gossipInterval := fs.Duration("gossip-interval", 500*time.Millisecond,
		"gossip round cadence; membership eviction takes 10 rounds of silence")
	gossipSecret := fs.String("gossip-secret", "",
		"shared secret authenticating gossip datagrams (HMAC-SHA256); empty trusts the network — required beyond loopback")
	list := fs.Bool("list", false, "print the servable script names and exit")
	verbose := fs.Bool("v", false, "log connection-level events to stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, name := range patterns.Names() {
			fmt.Fprintln(out, name)
		}
		return nil
	}

	def, err := patterns.ByName(*script, *n)
	if err != nil {
		return err
	}
	var opts []core.Option
	if *deadline > 0 {
		opts = append(opts, core.WithPerformanceDeadline(*deadline))
	}
	var asyncTracer *trace.Async
	if *sampleFrac > 0 {
		// Sampled tracing: events of sampled performances land in an
		// in-memory log behind an async ring, counters in the metrics
		// registry track drops. The log is a placeholder sink — the point
		// in scriptd is the sampling and the trace IDs on the wire.
		asyncTracer = trace.NewAsync(&trace.Log{}, 0)
		defer asyncTracer.Close()
		opts = append(opts,
			core.WithTracer(asyncTracer),
			core.WithSampler(trace.NewProbabilitySampler(*sampleFrac, *sampleSeed)))
	}
	in := core.NewInstance(def, opts...)

	cfg := remote.HostConfig{
		HeartbeatTimeout: *hbTimeout,
		ResumeWindow:     *resumeWindow,
		MaxConns:         *maxConns,
		MaxEnrollments:   *maxEnrollments,
		MaxPendingOffers: *maxPending,
		RetryAfter:       *retryAfter,
	}
	cfg.MaxProtocolVersion = *maxProto
	if *verbose {
		cfg.Logf = func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, "scriptd: "+format+"\n", a...)
		}
	}
	h := remote.NewHost(in, cfg)
	if err := h.Listen(*addr); err != nil {
		return err
	}
	fmt.Fprintf(out, "serving %q (n=%d)\n", def.Name(), *n)
	fmt.Fprintf(out, "listening on %s\n", h.Addr())

	var reg registry.Registry
	var stopAnnounce func()
	if *registrySpec != "" {
		switch {
		case strings.HasPrefix(*registrySpec, "gossip:"):
			gcfg := registry.GossipConfig{
				Bind:     strings.TrimPrefix(*registrySpec, "gossip:"),
				Interval: *gossipInterval,
			}
			if *gossipPeers != "" {
				gcfg.Seeds = strings.Split(*gossipPeers, ",")
			}
			if *gossipSecret != "" {
				gcfg.Secret = []byte(*gossipSecret)
			}
			if *verbose {
				gcfg.Logf = func(format string, a ...any) {
					fmt.Fprintf(os.Stderr, "scriptd: "+format+"\n", a...)
				}
			}
			g, err := registry.NewGossip(gcfg)
			if err != nil {
				return err
			}
			reg = g
			fmt.Fprintf(out, "gossip on %s\n", g.Addr())
		case strings.HasPrefix(*registrySpec, "static:"):
			s, err := registry.NewStaticFile(strings.TrimPrefix(*registrySpec, "static:"), 2*time.Second)
			if err != nil {
				return err
			}
			reg = s
		default:
			return fmt.Errorf(`unknown -registry %q (want "gossip:BIND-ADDR" or "static:FILE")`, *registrySpec)
		}
		defer reg.Close()
		ann := *announceAddr
		if ann == "" {
			ann = h.Addr().String()
		}
		var prevShed atomic.Uint64
		stopAnnounce = reg.Announce(
			registry.Endpoint{Addr: ann, Scripts: []string{def.Name()}},
			func() registry.Load {
				st := h.Stats()
				shed := uint64(st.ShedEnrollments)
				return registry.Load{
					Conns:         st.Conns,
					Enrolling:     st.Enrolling,
					PendingOffers: in.PendingOffers(),
					ShedRecent:    shed - prevShed.Swap(shed),
				}
			})
		fmt.Fprintf(out, "announcing %s\n", ann)
	}

	if *metricsAddr != "" {
		mln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		defer mln.Close()
		srv := &http.Server{Handler: metricsMux(h, in, reg, def.Name())}
		go func() { _ = srv.Serve(mln) }()
		defer srv.Close()
		fmt.Fprintf(out, "metrics on %s\n", mln.Addr())
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	errCh := make(chan error, 1)
	go func() { errCh <- h.Serve() }()

	select {
	case err := <-errCh:
		return err
	case sig := <-sigCh:
		fmt.Fprintf(out, "%s: draining\n", sig)
		if stopAnnounce != nil {
			// Leave the registry first: clients stop routing new offers
			// here while the drain lets in-flight performances finish.
			stopAnnounce()
		}
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := h.Drain(ctx); err != nil {
			return fmt.Errorf("drain: %w", err)
		}
		<-errCh // Serve returns nil once the listener closes
		fmt.Fprintln(out, "drained")
		return nil
	}
}

// metricsMux builds the observability endpoint: /metrics serves the
// process-wide counter registry plus the host's live gauges in Prometheus
// text format, /debug/vars serves Go's expvar JSON.
func metricsMux(h *remote.Host, in *core.Instance, reg registry.Registry, script string) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = metrics.Default.WritePrometheus(w)
		st := h.Stats()
		gauges := []struct {
			name string
			val  int64
		}{
			{"scriptd_host_conns", int64(st.Conns)},
			{"scriptd_host_enrolling", int64(st.Enrolling)},
			{"scriptd_host_active_streams", int64(st.ActiveStreams)},
			{"scriptd_host_shed_conns_total", int64(st.ShedConns)},
			{"scriptd_host_shed_enrollments_total", int64(st.ShedEnrollments)},
			{"scriptd_host_conns_v1_total", int64(st.ConnsV1)},
			{"scriptd_host_conns_v2_total", int64(st.ConnsV2)},
			{"scriptd_instance_performances", int64(in.Performances())},
			{"scriptd_instance_pending_offers", int64(in.PendingOffers())},
			{"scriptd_instance_live_traces", int64(len(in.TraceContexts()))},
		}
		if reg != nil {
			gauges = append(gauges, struct {
				name string
				val  int64
			}{"scriptd_registry_members", int64(len(reg.Snapshot(script)))})
		}
		for _, g := range gauges {
			fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", g.name, g.name, g.val)
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}
