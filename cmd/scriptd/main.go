// Command scriptd serves a script over TCP: it builds one of the named
// pattern definitions (internal/patterns), wraps it in a remote.Host, and
// accepts remote.Enroller connections until interrupted. Each enrolling
// process supplies its own role body; scriptd only runs the shared
// performance machinery — scheduling, rendezvous, abort, drain.
//
// Usage:
//
//	scriptd -script star_broadcast -n 3 [-addr 127.0.0.1:0] [-deadline 5s]
//	scriptd -list
//
// The resolved listen address is printed to stdout as "listening on ADDR"
// so callers binding port 0 can scrape it. SIGINT/SIGTERM triggers a
// graceful drain: in-flight performances finish, new offers are rejected
// with ErrDraining, then the process exits.
//
// Admission control: -max-conns, -max-enrollments, and -max-pending-offers
// cap the host's concurrent connections, admitted enrollments, and pending
// offer backlog; work over a cap is shed fast with ErrOverloaded carrying
// the -retry-after backoff hint, and in-flight performances are never
// aborted by shedding.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/scriptabs/goscript/internal/core"
	"github.com/scriptabs/goscript/internal/patterns"
	"github.com/scriptabs/goscript/internal/remote"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("scriptd", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:0", "TCP address to listen on (port 0 picks a free port)")
	script := fs.String("script", "star_broadcast", "pattern definition to serve (see -list)")
	n := fs.Int("n", 3, "pattern size parameter (recipients, parties, capacity, ...)")
	deadline := fs.Duration("deadline", 0, "per-performance deadline (0 disables)")
	hbTimeout := fs.Duration("heartbeat-timeout", remote.DefaultHeartbeatTimeout,
		"abort a performance whose enroller has been silent this long")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "how long a signal-triggered drain may take")
	maxConns := fs.Int("max-conns", 0, "cap on concurrently-served connections (0 = unlimited)")
	maxEnrollments := fs.Int("max-enrollments", 0, "cap on concurrently-admitted enrollments (0 = unlimited)")
	maxPending := fs.Int("max-pending-offers", 0, "cap on pending (unmatched) offers (0 = unlimited)")
	retryAfter := fs.Duration("retry-after", remote.DefaultRetryAfter,
		"backoff hint carried by overload rejections (negative disables the hint)")
	maxProto := fs.Int("max-proto", 0,
		"highest SCRW protocol version to negotiate (0 = newest; 1 pins the JSON v1 wire)")
	list := fs.Bool("list", false, "print the servable script names and exit")
	verbose := fs.Bool("v", false, "log connection-level events to stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, name := range patterns.Names() {
			fmt.Fprintln(out, name)
		}
		return nil
	}

	def, err := patterns.ByName(*script, *n)
	if err != nil {
		return err
	}
	var opts []core.Option
	if *deadline > 0 {
		opts = append(opts, core.WithPerformanceDeadline(*deadline))
	}
	in := core.NewInstance(def, opts...)

	cfg := remote.HostConfig{
		HeartbeatTimeout: *hbTimeout,
		MaxConns:         *maxConns,
		MaxEnrollments:   *maxEnrollments,
		MaxPendingOffers: *maxPending,
		RetryAfter:       *retryAfter,
	}
	cfg.MaxProtocolVersion = *maxProto
	if *verbose {
		cfg.Logf = func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, "scriptd: "+format+"\n", a...)
		}
	}
	h := remote.NewHost(in, cfg)
	if err := h.Listen(*addr); err != nil {
		return err
	}
	fmt.Fprintf(out, "serving %q (n=%d)\n", def.Name(), *n)
	fmt.Fprintf(out, "listening on %s\n", h.Addr())

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	errCh := make(chan error, 1)
	go func() { errCh <- h.Serve() }()

	select {
	case err := <-errCh:
		return err
	case sig := <-sigCh:
		fmt.Fprintf(out, "%s: draining\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := h.Drain(ctx); err != nil {
			return fmt.Errorf("drain: %w", err)
		}
		<-errCh // Serve returns nil once the listener closes
		fmt.Fprintln(out, "drained")
		return nil
	}
}
