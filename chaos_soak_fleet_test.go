//go:build chaos

package script_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/scriptabs/goscript/internal/chaos"
	"github.com/scriptabs/goscript/internal/conform"
	"github.com/scriptabs/goscript/internal/core"
	"github.com/scriptabs/goscript/internal/ids"
	"github.com/scriptabs/goscript/internal/registry"
	"github.com/scriptabs/goscript/internal/remote"
	"github.com/scriptabs/goscript/internal/trace"
)

// TestChaosSoakFleet runs the fleet fabric under a hostile discovery plane:
// three in-process hosts announce themselves over gossip whose packets the
// injector drops, delays, duplicates, and stales, while injected overload
// bursts force the balanced enroller to reroute mid-soak. The contracts
// under test:
//
//   - gossip is anti-entropy: membership still converges to all three hosts
//     and never evicts a live one, whatever the packet faults;
//   - rerouting is admission-only: every enrollment completes somewhere and
//     zero admitted performances abort;
//   - every host's trace still conforms after the stampede.
func TestChaosSoakFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak is not short")
	}
	runChaosSoakFleet(t, 20260808)
}

func runChaosSoakFleet(t *testing.T, seed int64) {
	inj := chaos.New(chaos.Config{
		Seed: seed,
		// Discovery-plane faults: lossy, laggy, duplicating gossip with
		// stale load digests. No conn drops or heartbeat stalls — the soak
		// asserts zero aborts, so only faults that must never touch
		// admitted work are in play.
		GossipDropP:    0.2,
		GossipDelayP:   0.2,
		GossipDelayMax: 30 * time.Millisecond,
		GossipDupP:     0.2,
		GossipStaleP:   0.3,
		// Admission-level overload bursts on top of the genuine cap sheds
		// keep the balancer rerouting.
		OverloadP: 0.05,
		// Mid-op connection cuts ride the fleet too: every host opens a
		// resume window, so the blips heal invisibly and the zero-abort
		// contract below still holds.
		NetCutP: 0.02,
	})

	const (
		fleetN  = 3
		capN    = 4
		clients = 16
		rounds  = 20
		total   = clients * rounds
	)

	type node struct {
		in  *core.Instance
		h   *remote.Host
		g   *registry.Gossip
		log *trace.Log
	}
	nodes := make([]*node, fleetN)
	var seedAddrs []string
	for i := range nodes {
		def := core.NewScript("slot").
			Role("only", func(rc core.Ctx) error { return errors.New("local body must not run") }).
			MustBuild()
		log := &trace.Log{}
		in := core.NewInstance(def, core.WithTracer(log))
		h := remote.NewHost(in, remote.HostConfig{
			MaxEnrollments: capN,
			RetryAfter:     5 * time.Millisecond,
			ResumeWindow:   5 * time.Second,
			Faults:         inj,
		})
		if err := h.Listen("127.0.0.1:0"); err != nil {
			t.Fatalf("Listen: %v", err)
		}
		go h.Serve()
		g, err := registry.NewGossip(registry.GossipConfig{
			Bind:     "127.0.0.1:0",
			Seeds:    seedAddrs,
			Interval: 15 * time.Millisecond,
			Seed:     seed + int64(i),
			Faults:   inj,
		})
		if err != nil {
			t.Fatalf("gossip %d: %v", i, err)
		}
		seedAddrs = append(seedAddrs, g.Addr())
		g.Announce(
			registry.Endpoint{Addr: h.Addr().String(), Scripts: []string{"slot"}},
			func() registry.Load {
				st := h.Stats()
				return registry.Load{Conns: st.Conns, Enrolling: st.Enrolling, PendingOffers: in.PendingOffers()}
			})
		nodes[i] = &node{in: in, h: h, g: g, log: log}
	}
	defer func() {
		for _, n := range nodes {
			n.g.Close()
			n.h.Close()
			n.in.Close()
		}
	}()

	// The client's own gossip node rides the same faulty plane.
	cg, err := registry.NewGossip(registry.GossipConfig{
		Bind:     "127.0.0.1:0",
		Seeds:    []string{seedAddrs[0]},
		Interval: 15 * time.Millisecond,
		Seed:     seed + 100,
		Faults:   inj,
	})
	if err != nil {
		t.Fatalf("client gossip: %v", err)
	}
	defer cg.Close()
	enr := remote.NewEnrollerRegistry(cg, remote.EnrollerConfig{
		Script:   "slot",
		Balancer: remote.NewLeastLoaded(),
		// The client side carries the injector too: mid-op cuts are drawn at
		// the enroller's op entry.
		Faults: inj,
		Retry: remote.RetryPolicy{
			MaxAttempts: 10000,
			BaseBackoff: time.Millisecond,
			MaxBackoff:  25 * time.Millisecond,
			Seed:        seed,
		},
	})
	defer enr.Close()

	// Convergence under fire: drops and delays slow anti-entropy down but
	// cannot stop it.
	deadline := time.Now().Add(30 * time.Second)
	for len(enr.Hosts()) != fleetN {
		if time.Now().After(deadline) {
			t.Fatalf("discovery did not converge (seed %d): %v", seed, enr.Hosts())
		}
		time.Sleep(5 * time.Millisecond)
	}

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
				_, err := enr.Enroll(ctx, core.Enrollment{
					PID:  ids.PID(fmt.Sprintf("C%d", c)),
					Role: ids.Role("only"),
					// One wire op per enrollment gives the injector its mid-op
					// cut point; the resumed session must answer it anyway.
					Body: func(rc core.Ctx) error {
						if !rc.Filled(ids.Role("only")) {
							return errors.New("own role not filled")
						}
						return nil
					},
				})
				cancel()
				if err != nil {
					t.Errorf("client %d round %d did not complete under retry: %v", c, r, err)
					return
				}
			}
		}(c)
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(120 * time.Second):
		t.Fatalf("fleet soak wedged (seed %d): clients still retrying after 120s", seed)
	}

	// No live host was evicted by the faulty plane.
	if got := len(enr.Hosts()); got != fleetN {
		t.Errorf("host set shrank to %d under gossip faults (seed %d): %v", got, seed, enr.Hosts())
	}

	var performed int
	for i, n := range nodes {
		dctx, dcancel := context.WithTimeout(context.Background(), 30*time.Second)
		if err := n.h.Drain(dctx); err != nil {
			t.Fatalf("host %d final Drain = %v (seed %d)", i, err, seed)
		}
		dcancel()
		performed += n.in.Performances()
		for _, v := range conform.CheckSemantics(n.log.Events()) {
			t.Errorf("host %d semantics (seed %d): %s", i, seed, v)
		}
	}
	if performed != total {
		t.Errorf("fleet performed %d enrollments, want %d (seed %d)", performed, total, seed)
	}

	drops, delays, dups, stales := inj.GossipStats()
	if drops == 0 || delays == 0 || dups == 0 || stales == 0 {
		t.Errorf("gossip faults never fired: drops=%d delays=%d dups=%d stales=%d (seed %d)",
			drops, delays, dups, stales, seed)
	}
	if inj.NetCutCount() == 0 {
		t.Errorf("no mid-op connection cuts fired — churn harness not wired in (seed %d)", seed)
	}
	t.Logf("seed %d: %d enrollments over %d hosts; gossip faults drops=%d delays=%d dups=%d stales=%d; injected overloads=%d; mid-op cuts=%d",
		seed, total, fleetN, drops, delays, dups, stales, inj.OverloadCount(), inj.NetCutCount())
}
