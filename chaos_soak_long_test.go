//go:build chaos

package script_test

import (
	"testing"
	"time"
)

// TestChaosSoakLong is the CI chaos job: a 30-second fixed-seed soak under
// the race detector (go test -race -tags chaos -run TestChaosSoakLong).
// The fixed seed makes the injector's fault decision stream reproducible,
// so a CI failure can be replayed locally with the same seed.
func TestChaosSoakLong(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak is not short")
	}
	runChaosSoak(t, 20260806, 30*time.Second)
}
