package script

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Pool multiplexes enrollments across N instances of one script definition —
// the paper's sanctioned route to concurrent performances ("multiple
// instances add no power but avoid re-coding the script", Section II): a
// single Instance serializes its performances by the successive-activations
// rule, so independent casts that could run side by side queue behind each
// other. A Pool gives each cast its own instance and so its own lock,
// fabric, and performance pipeline.
//
// Dispatch is least-pending with a round-robin tie-break: Enroll reads each
// instance's atomic load counter (enrollments in flight) and picks the least
// loaded, scanning from a rotating start so ties spread evenly. Because all
// roles of one performance must enroll in the *same* instance, Pool.Enroll
// suits workloads where an enrollment completes a cast on whichever
// instance it lands on: single-role scripts, open casts under immediate
// initiation, or client roles against per-instance resident partners (e.g.
// one set of lock-manager processes enrolled per instance via Instance(i)).
// Casts that must co-perform should enroll through EnrollBloc, which routes
// the whole bloc to one instance, or pin an instance with Instance(i).
type Pool struct {
	def       Definition
	instances []*Instance
	cursor    atomic.Uint64
	// closed is the fast-fail flag for Enroll. It is set only AFTER every
	// instance has been closed, so a true reading guarantees no instance
	// can admit an offer; a false reading merely forwards to an instance's
	// own (authoritative) closed check.
	closed    atomic.Bool
	draining  atomic.Bool
	closeOnce sync.Once
}

// NewPool creates a pool of n instances of def, each configured with opts.
// n must be at least 1.
func NewPool(def Definition, n int, opts ...Option) *Pool {
	if n < 1 {
		panic(fmt.Sprintf("script: pool size %d < 1", n))
	}
	p := &Pool{def: def, instances: make([]*Instance, n)}
	for i := range p.instances {
		p.instances[i] = NewInstance(def, opts...)
	}
	return p
}

// Definition returns the pool's script definition.
func (p *Pool) Definition() Definition { return p.def }

// Size returns the number of instances in the pool.
func (p *Pool) Size() int { return len(p.instances) }

// Instance returns the i-th instance (0-based), for workloads that pin
// roles to a specific instance (resident servers, co-performing casts).
func (p *Pool) Instance(i int) *Instance { return p.instances[i] }

// Performances returns the total number of performances started across the
// pool.
func (p *Pool) Performances() int {
	total := 0
	for _, in := range p.instances {
		total += in.Performances()
	}
	return total
}

// PendingEnrollments returns the total number of pending offers across the
// pool.
func (p *Pool) PendingEnrollments() int {
	total := 0
	for _, in := range p.instances {
		total += in.PendingEnrollments()
	}
	return total
}

// PendingOffers returns the total number of pending offers across the pool,
// read from each instance's atomic counter — the contention-free variant of
// PendingEnrollments that admission control (the remote host's per-target
// pending-offer cap) consults on every offer.
func (p *Pool) PendingOffers() int {
	total := 0
	for _, in := range p.instances {
		total += in.PendingOffers()
	}
	return total
}

// Closed reports whether the pool has fully closed: every instance closed
// and the pool-level fast-fail flag accepted.
func (p *Pool) Closed() bool { return p.closed.Load() }

// Draining reports whether Drain has been called (the pool no longer admits
// offers).
func (p *Pool) Draining() bool { return p.draining.Load() }

// pick selects the dispatch target: the least-loaded instance, scanning
// from a rotating start so equally-loaded instances are used round-robin.
func (p *Pool) pick() *Instance {
	n := uint64(len(p.instances))
	start := p.cursor.Add(1)
	best := p.instances[start%n]
	bestLoad := best.Load()
	for i := uint64(1); i < n && bestLoad > 0; i++ {
		in := p.instances[(start+i)%n]
		if l := in.Load(); l < bestLoad {
			best, bestLoad = in, l
		}
	}
	return best
}

// Enroll dispatches e to the least-loaded instance and enrolls there,
// blocking like Instance.Enroll. The chosen instance's performance number
// is reported in the Result.
func (p *Pool) Enroll(ctx context.Context, e Enrollment) (Result, error) {
	if p.draining.Load() {
		return Result{}, ErrDraining
	}
	if p.closed.Load() {
		return Result{}, ErrClosed
	}
	return p.pick().Enroll(ctx, e)
}

// EnrollBloc dispatches a joint enrollment to the least-loaded instance, so
// the whole bloc lands in one performance there (see Instance.EnrollBloc).
func (p *Pool) EnrollBloc(ctx context.Context, members []Enrollment) ([]Result, error) {
	if p.draining.Load() {
		return nil, ErrDraining
	}
	if p.closed.Load() {
		return nil, ErrClosed
	}
	return p.pick().EnrollBloc(ctx, members)
}

// Close aborts every instance in the pool. The pool-level closed flag is
// accepted only after every instance has closed; until then a racing Enroll
// may still dispatch, and the instance's own closed check — which is
// authoritative — rejects it. (Accepting the flag first would let the pool
// report ErrClosed while an instance still admits offers and starts a fresh
// performance mid-shutdown.) Close is idempotent. Prefer Drain for a
// shutdown that lets in-flight performances complete.
func (p *Pool) Close() {
	p.closeOnce.Do(func() {
		for _, in := range p.instances {
			in.Close()
		}
		p.closed.Store(true)
	})
}

// Drain shuts the pool down gracefully: new offers fail with ErrDraining
// immediately, every instance drains concurrently (pending offers released,
// in-flight performances run to completion), and Drain returns nil once all
// instances have closed. If ctx ends first, Drain returns the joined
// errors; instances keep draining and a later Drain or Close finishes the
// job. See Instance.Drain for the per-instance semantics.
func (p *Pool) Drain(ctx context.Context) error {
	p.draining.Store(true)
	errs := make([]error, len(p.instances))
	var wg sync.WaitGroup
	for i, in := range p.instances {
		wg.Add(1)
		go func(i int, in *Instance) {
			defer wg.Done()
			errs[i] = in.Drain(ctx)
		}(i, in)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return err
	}
	p.closed.Store(true)
	return nil
}
