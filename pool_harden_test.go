package script_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	script "github.com/scriptabs/goscript"
)

// TestPoolCloseNeverLiesAboutClosed is the regression test for the
// Close-vs-Enroll race: Pool.Close must accept the pool-level closed flag
// only after every instance has closed. With a single-instance pool the
// ordering is observable — whenever Enroll reports ErrClosed, the instance
// behind the pool must actually be closed. Under the old ordering (flag
// first, then instance closes) this fails: the flag reads true while the
// instance still admits offers.
func TestPoolCloseNeverLiesAboutClosed(t *testing.T) {
	for round := 0; round < 200; round++ {
		pool := script.NewPool(slotDef(t), 1)
		start := make(chan struct{})
		got := make(chan error, 1)
		go func() {
			<-start
			_, err := pool.Enroll(context.Background(), script.Enrollment{
				PID: "P", Role: script.Role("only"),
			})
			got <- err
		}()
		go func() {
			<-start
			pool.Close()
		}()
		close(start)
		err := <-got
		if err == nil {
			continue // enrolled before the close landed: fine
		}
		if !errors.Is(err, script.ErrClosed) {
			t.Fatalf("round %d: err = %v, want nil or ErrClosed", round, err)
		}
		if !pool.Instance(0).Closed() {
			t.Fatalf("round %d: pool reported ErrClosed while its instance was still open", round)
		}
	}
}

// TestPoolCloseVsEnrollStress: many enrollers racing Close across a
// multi-instance pool — every enrollment resolves with nil or ErrClosed,
// and nothing deadlocks or panics.
func TestPoolCloseVsEnrollStress(t *testing.T) {
	for round := 0; round < 20; round++ {
		pool := script.NewPool(slotDef(t), 4)
		var wg sync.WaitGroup
		start := make(chan struct{})
		errs := make(chan error, 32)
		for w := 0; w < 32; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				_, err := pool.Enroll(context.Background(), script.Enrollment{
					PID: script.PID(fmt.Sprintf("P%d", w)), Role: script.Role("only"),
				})
				errs <- err
			}()
		}
		go func() {
			<-start
			pool.Close()
		}()
		close(start)
		wg.Wait()
		close(errs)
		for err := range errs {
			if err != nil && !errors.Is(err, script.ErrClosed) {
				t.Fatalf("round %d: err = %v, want nil or ErrClosed", round, err)
			}
		}
	}
}

// TestPoolDrain: Pool.Drain rejects new offers with ErrDraining, lets
// in-flight performances finish, closes every instance, and returns nil.
func TestPoolDrain(t *testing.T) {
	release := make(chan struct{})
	def := script.New("hold").
		Role("only", func(rc script.Ctx) error {
			select {
			case <-release:
			case <-rc.Context().Done():
			}
			rc.SetResult(0, "done")
			return nil
		}).
		MustBuild()
	pool := script.NewPool(def, 3)

	// One holder per instance: an instance serializes its performances, so
	// this is the maximum number of in-flight performances.
	var wg sync.WaitGroup
	outs := make(chan error, 3)
	for w := 0; w < 3; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := pool.Enroll(context.Background(), script.Enrollment{
				PID: script.PID(fmt.Sprintf("H%d", w)), Role: script.Role("only"),
			})
			if err == nil && (len(res.Values) == 0 || res.Values[0] != "done") {
				err = fmt.Errorf("missing result: %+v", res)
			}
			outs <- err
		}()
	}
	// Wait until all holders are in flight.
	deadline := time.Now().Add(5 * time.Second)
	for pool.Performances() < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d performances started", pool.Performances())
		}
		time.Sleep(time.Millisecond)
	}

	drainDone := make(chan error, 1)
	go func() { drainDone <- pool.Drain(context.Background()) }()
	deadline = time.Now().Add(5 * time.Second)
	for !pool.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("pool never became draining")
		}
		time.Sleep(time.Millisecond)
	}
	// New offers fail fast once draining is visible.
	if _, err := pool.Enroll(context.Background(), script.Enrollment{PID: "X", Role: script.Role("only")}); !errors.Is(err, script.ErrDraining) {
		t.Fatalf("offer during drain: err = %v, want ErrDraining", err)
	}
	// Drain must wait for the in-flight work.
	select {
	case err := <-drainDone:
		t.Fatalf("Drain returned %v before in-flight performances finished", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	if err := <-drainDone; err != nil {
		t.Fatalf("Drain = %v, want nil", err)
	}
	wg.Wait()
	close(outs)
	for err := range outs {
		if err != nil {
			t.Fatalf("in-flight enrollment err = %v, want nil", err)
		}
	}
	for i := 0; i < pool.Size(); i++ {
		if !pool.Instance(i).Closed() {
			t.Fatalf("instance %d not closed after Pool.Drain", i)
		}
	}
	if _, err := pool.Enroll(context.Background(), script.Enrollment{PID: "Y", Role: script.Role("only")}); !errors.Is(err, script.ErrDraining) {
		t.Fatalf("post-drain offer err = %v, want ErrDraining", err)
	}
}
