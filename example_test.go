package script_test

import (
	"context"
	"fmt"
	"sort"
	"sync"

	script "github.com/scriptabs/goscript"
)

// ExampleNew shows the full lifecycle: define a script, enroll processes,
// collect results.
func ExampleNew() {
	def := script.New("greet").
		Role("asker", func(rc script.Ctx) error {
			if err := rc.Send(script.Role("answerer"), "ping"); err != nil {
				return err
			}
			v, err := rc.Recv(script.Role("answerer"))
			rc.SetResult(0, v)
			return err
		}).
		Role("answerer", func(rc script.Ctx) error {
			if _, err := rc.Recv(script.Role("asker")); err != nil {
				return err
			}
			return rc.Send(script.Role("asker"), "pong")
		}).
		MustBuild()

	in := script.NewInstance(def)
	defer in.Close()
	ctx := context.Background()

	go func() {
		_, _ = in.Enroll(ctx, script.Enrollment{PID: "B", Role: script.Role("answerer")})
	}()
	res, err := in.Enroll(ctx, script.Enrollment{PID: "A", Role: script.Role("asker")})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(res.Values[0])
	// Output: pong
}

// ExampleInstance_Enroll_partners shows partners-named enrollment: the
// asker insists that a specific process plays the answerer.
func ExampleInstance_Enroll_partners() {
	def := script.New("pair").
		Role("a", func(rc script.Ctx) error { return rc.Send(script.Role("b"), "hi") }).
		Role("b", func(rc script.Ctx) error {
			v, err := rc.Recv(script.Role("a"))
			rc.SetResult(0, v)
			return err
		}).
		MustBuild()
	in := script.NewInstance(def)
	defer in.Close()
	ctx := context.Background()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = in.Enroll(ctx, script.Enrollment{
			PID:  "alice",
			Role: script.Role("a"),
			With: map[script.RoleRef]script.PIDSet{script.Role("b"): script.Partners("bob")},
		})
	}()
	res, err := in.Enroll(ctx, script.Enrollment{PID: "bob", Role: script.Role("b")})
	wg.Wait()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(res.Values[0])
	// Output: hi
}

// ExampleCtx_Select shows the guarded alternative: a merge role accepts
// from whichever producer is ready.
func ExampleCtx_Select() {
	def := script.New("merge").
		Role("sink", func(rc script.Ctx) error {
			var got []string
			for len(got) < 2 {
				sel, err := rc.Select(
					script.RecvFrom(script.Member("src", 1)),
					script.RecvFrom(script.Member("src", 2)),
				)
				if err != nil {
					return err
				}
				got = append(got, sel.Val.(string))
			}
			sort.Strings(got)
			rc.SetResult(0, fmt.Sprint(got))
			return nil
		}).
		Family("src", 2, func(rc script.Ctx) error {
			return rc.Send(script.Role("sink"), fmt.Sprintf("item-%d", rc.Index()))
		}).
		MustBuild()
	in := script.NewInstance(def)
	defer in.Close()
	ctx := context.Background()
	for i := 1; i <= 2; i++ {
		i := i
		go func() {
			_, _ = in.Enroll(ctx, script.Enrollment{
				PID: script.PID(fmt.Sprintf("P%d", i)), Role: script.Member("src", i),
			})
		}()
	}
	res, err := in.Enroll(ctx, script.Enrollment{PID: "S", Role: script.Role("sink")})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(res.Values[0])
	// Output: [item-1 item-2]
}
