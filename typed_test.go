package script_test

import (
	"strings"
	"testing"

	script "github.com/scriptabs/goscript"
)

func TestTypedHelpersHappyPath(t *testing.T) {
	ctx := testCtx(t)
	def := script.New("typed").
		Role("a", func(rc script.Ctx) error {
			x, err := script.Arg[int](rc, 0)
			if err != nil {
				return err
			}
			return rc.Send(script.Role("b"), x*2)
		}).
		Role("b", func(rc script.Ctx) error {
			v, err := script.Receive[int](rc, script.Role("a"))
			if err != nil {
				return err
			}
			rc.SetResult(0, v)
			return rc.SendTag(script.Role("c"), "fwd", v+1)
		}).
		Role("c", func(rc script.Ctx) error {
			v, err := script.ReceiveTag[int](rc, script.Role("b"), "fwd")
			if err != nil {
				return err
			}
			rc.SetResult(0, v)
			return nil
		}).
		MustBuild()

	in := script.NewInstance(def)
	defer in.Close()
	type out struct {
		res script.Result
		err error
	}
	chB := make(chan out, 1)
	chC := make(chan out, 1)
	go func() {
		res, err := in.Enroll(ctx, script.Enrollment{PID: "B", Role: script.Role("b")})
		chB <- out{res, err}
	}()
	go func() {
		res, err := in.Enroll(ctx, script.Enrollment{PID: "C", Role: script.Role("c")})
		chC <- out{res, err}
	}()
	if _, err := in.Enroll(ctx, script.Enrollment{PID: "A", Role: script.Role("a"), Args: []any{21}}); err != nil {
		t.Fatal(err)
	}
	b := <-chB
	if b.err != nil {
		t.Fatal(b.err)
	}
	if v, err := script.Value[int](b.res, 0); err != nil || v != 42 {
		t.Fatalf("b value = %v err=%v", v, err)
	}
	c := <-chC
	if v, err := script.Value[int](c.res, 0); err != nil || v != 43 {
		t.Fatalf("c value = %v err=%v", v, err)
	}
}

func TestTypedHelpersErrors(t *testing.T) {
	ctx := testCtx(t)
	var argTypeErr, argRangeErr, recvTypeErr error
	def := script.New("typed-err").
		Role("a", func(rc script.Ctx) error {
			_, argTypeErr = script.Arg[string](rc, 0) // actually int
			_, argRangeErr = script.Arg[int](rc, 7)   // out of range
			return rc.Send(script.Role("b"), "not-an-int")
		}).
		Role("b", func(rc script.Ctx) error {
			_, recvTypeErr = script.Receive[int](rc, script.Role("a"))
			return nil
		}).
		MustBuild()
	in := script.NewInstance(def)
	defer in.Close()
	done := make(chan error, 1)
	go func() {
		_, err := in.Enroll(ctx, script.Enrollment{PID: "B", Role: script.Role("b")})
		done <- err
	}()
	if _, err := in.Enroll(ctx, script.Enrollment{PID: "A", Role: script.Role("a"), Args: []any{1}}); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	for name, err := range map[string]error{
		"arg type":  argTypeErr,
		"arg range": argRangeErr,
		"recv type": recvTypeErr,
	} {
		if err == nil {
			t.Errorf("%s: want error", name)
		}
	}
	if !strings.Contains(argTypeErr.Error(), "int") {
		t.Errorf("arg type error not descriptive: %v", argTypeErr)
	}
}

func TestValueErrors(t *testing.T) {
	res := script.Result{Role: script.Role("r"), Values: []any{1}}
	if _, err := script.Value[string](res, 0); err == nil {
		t.Error("type mismatch must error")
	}
	if _, err := script.Value[int](res, 5); err == nil {
		t.Error("out of range must error")
	}
	if v, err := script.Value[int](res, 0); err != nil || v != 1 {
		t.Errorf("v=%v err=%v", v, err)
	}
}
