package script_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	script "github.com/scriptabs/goscript"
)

func slotDef(t testing.TB) script.Definition {
	t.Helper()
	return script.New("slot").
		Role("only", func(rc script.Ctx) error { return nil }).
		MustBuild()
}

func TestPoolCompletesEnrollments(t *testing.T) {
	pool := script.NewPool(slotDef(t), 4)
	defer pool.Close()
	if pool.Size() != 4 {
		t.Fatalf("Size = %d, want 4", pool.Size())
	}

	const workers, rounds = 8, 25
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				res, err := pool.Enroll(context.Background(), script.Enrollment{
					PID: script.PID(fmt.Sprintf("P%d", w)), Role: script.Role("only"),
				})
				if err != nil {
					errCh <- err
					return
				}
				if res.Performance < 1 {
					errCh <- fmt.Errorf("bad performance number %d", res.Performance)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if got, want := pool.Performances(), workers*rounds; got != want {
		t.Fatalf("total performances = %d, want %d", got, want)
	}
}

func TestPoolSpreadsLoad(t *testing.T) {
	// Hold many single-role performances open concurrently: with
	// least-pending dispatch they must not all pile onto one instance.
	release := make(chan struct{})
	def := script.New("hold").
		Role("only", func(rc script.Ctx) error {
			select {
			case <-release:
			case <-rc.Context().Done():
			}
			return nil
		}).
		MustBuild()
	pool := script.NewPool(def, 4)
	defer pool.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = pool.Enroll(ctx, script.Enrollment{
				PID: script.PID(fmt.Sprintf("H%d", w)), Role: script.Role("only"),
			})
		}()
	}
	// Every instance should end up with work: 8 holders over 4 instances.
	deadline := time.Now().Add(5 * time.Second)
	for {
		busy := 0
		for i := 0; i < pool.Size(); i++ {
			if pool.Instance(i).Load() > 0 {
				busy++
			}
		}
		if busy == pool.Size() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("load not spread: only %d of %d instances busy", busy, pool.Size())
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
}

func TestPoolEnrollBlocLandsTogether(t *testing.T) {
	def := script.New("pair").
		Role("a", func(rc script.Ctx) error { return rc.Send(script.Role("b"), "hi") }).
		Role("b", func(rc script.Ctx) error {
			v, err := rc.Recv(script.Role("a"))
			rc.SetResult(0, v)
			return err
		}).
		MustBuild()
	pool := script.NewPool(def, 3)
	defer pool.Close()

	for round := 0; round < 5; round++ {
		results, err := pool.EnrollBloc(context.Background(), []script.Enrollment{
			{PID: "A", Role: script.Role("a")},
			{PID: "B", Role: script.Role("b")},
		})
		if err != nil {
			t.Fatal(err)
		}
		if results[0].Performance != results[1].Performance {
			t.Fatalf("bloc split across performances: %d vs %d",
				results[0].Performance, results[1].Performance)
		}
		if got := results[1].Values[0]; got != "hi" {
			t.Fatalf("b received %v, want hi", got)
		}
	}
}

func TestPoolClose(t *testing.T) {
	pool := script.NewPool(slotDef(t), 2)
	pool.Close()
	pool.Close() // idempotent
	if _, err := pool.Enroll(context.Background(), script.Enrollment{
		PID: "P", Role: script.Role("only"),
	}); !errors.Is(err, script.ErrClosed) {
		t.Fatalf("Enroll after Close: err = %v, want ErrClosed", err)
	}
}

func TestAsyncTracerOnInstance(t *testing.T) {
	log := &script.TraceLog{}
	tr := script.NewAsyncTracer(log, 0)
	defer tr.Close()
	in := script.NewInstance(slotDef(t), script.WithTracer(tr))
	defer in.Close()
	if _, err := in.Enroll(context.Background(), script.Enrollment{
		PID: "P", Role: script.Role("only"),
	}); err != nil {
		t.Fatal(err)
	}
	tr.Flush()
	if log.Len() == 0 {
		t.Fatal("async tracer delivered no events")
	}
	if d := tr.Dropped(); d != 0 {
		t.Fatalf("dropped %d events", d)
	}
}

func TestPoolSizeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPool(def, 0) did not panic")
		}
	}()
	script.NewPool(slotDef(t), 0)
}
