// Benchmarks: one per experiment of DESIGN.md's index (E1–E14). Each
// regenerates the performance-relevant side of the corresponding paper
// figure or claim; cmd/scriptbench prints the semantic tables.
package script_test

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	script "github.com/scriptabs/goscript"
	"github.com/scriptabs/goscript/internal/ada"
	"github.com/scriptabs/goscript/internal/core"
	"github.com/scriptabs/goscript/internal/csp"
	"github.com/scriptabs/goscript/internal/dist"
	"github.com/scriptabs/goscript/internal/ids"
	"github.com/scriptabs/goscript/internal/locktable"
	"github.com/scriptabs/goscript/internal/match"
	"github.com/scriptabs/goscript/internal/patterns"
	"github.com/scriptabs/goscript/internal/remote"
	"github.com/scriptabs/goscript/internal/sim"
	"github.com/scriptabs/goscript/internal/trans/adax"
	"github.com/scriptabs/goscript/internal/trans/cspx"
	"github.com/scriptabs/goscript/internal/trans/monx"
)

// broadcastHarness keeps n recipient goroutines enrolling repeatedly so the
// benchmark loop can drive one performance per sender enrollment.
type broadcastHarness struct {
	in     *core.Instance
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

func startBroadcastHarness(def core.Definition, n int) *broadcastHarness {
	ctx, cancel := context.WithCancel(context.Background())
	h := &broadcastHarness{in: core.NewInstance(def), cancel: cancel}
	for i := 1; i <= n; i++ {
		i := i
		h.wg.Add(1)
		go func() {
			defer h.wg.Done()
			for {
				if _, err := h.in.Enroll(ctx, core.Enrollment{
					PID: ids.PID(fmt.Sprintf("R%d", i)), Role: ids.Member(patterns.RoleRecipient, i),
				}); err != nil {
					return
				}
			}
		}()
	}
	return h
}

func (h *broadcastHarness) send(b *testing.B, v any) {
	if _, err := h.in.Enroll(context.Background(), core.Enrollment{
		PID: "T", Role: ids.Role(patterns.RoleSender), Args: []any{v},
	}); err != nil {
		b.Fatal(err)
	}
}

func (h *broadcastHarness) stop() {
	h.cancel()
	h.in.Close()
	h.wg.Wait()
}

// BenchmarkE01SuccessivePerformances measures the cost of the successive-
// activation barrier itself: a minimal three-role script with empty bodies,
// one performance per iteration (Figure 1's machinery).
func BenchmarkE01SuccessivePerformances(b *testing.B) {
	def := core.NewScript("fig1").
		Role("p", func(rc core.Ctx) error { return nil }).
		Role("q", func(rc core.Ctx) error { return nil }).
		Role("r", func(rc core.Ctx) error { return nil }).
		Initiation(core.ImmediateInitiation).
		Termination(core.ImmediateTermination).
		MustBuild()
	in := core.NewInstance(def)
	defer in.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var wg sync.WaitGroup
	for _, role := range []string{"q", "r"} {
		role := role
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if _, err := in.Enroll(ctx, core.Enrollment{
					PID: ids.PID(role + "-proc"), Role: ids.Role(role),
				}); err != nil {
					return
				}
			}
		}()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := in.Enroll(ctx, core.Enrollment{PID: "p-proc", Role: ids.Role("p")}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	cancel()
	in.Close()
	wg.Wait()
}

// BenchmarkE02RepeatedEnrollment measures Figure 2's repeated-enrollment
// pairing: one broadcast performance per iteration with two recipients.
func BenchmarkE02RepeatedEnrollment(b *testing.B) {
	h := startBroadcastHarness(patterns.StarBroadcast(2), 2)
	defer h.stop()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.send(b, i)
	}
}

// BenchmarkE03StarBroadcast measures Figure 3's performance cost across
// recipient counts.
func BenchmarkE03StarBroadcast(b *testing.B) {
	for _, n := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			h := startBroadcastHarness(patterns.StarBroadcast(n), n)
			defer h.stop()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h.send(b, i)
			}
		})
	}
}

// BenchmarkE04PipelineBroadcast measures Figure 4's pipeline across
// recipient counts (compare with E03 at equal N for the policy trade-off).
func BenchmarkE04PipelineBroadcast(b *testing.B) {
	for _, n := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			h := startBroadcastHarness(patterns.PipelineBroadcast(n), n)
			defer h.stop()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h.send(b, i)
			}
		})
	}
}

// BenchmarkE05LockManager measures Figure 5's lock-manager script: one
// lock+release cycle per iteration, per strategy and operation kind.
func BenchmarkE05LockManager(b *testing.B) {
	for _, strat := range []patterns.LockStrategy{
		patterns.OneReadAllWrite(), patterns.MajorityLocking(), patterns.MultiGranularity(),
	} {
		for _, write := range []bool{false, true} {
			kind := "read"
			if write {
				kind = "write"
			}
			b.Run(fmt.Sprintf("strategy=%s/op=%s", strat.Name, kind), func(b *testing.B) {
				const k = 3
				ctx, cancel := context.WithCancel(context.Background())
				in := core.NewInstance(patterns.LockManager(k, strat))
				var wg sync.WaitGroup
				for i := 1; i <= k; i++ {
					i := i
					table := strat.NewTable()
					wg.Add(1)
					go func() {
						defer wg.Done()
						_ = patterns.RunManager(ctx, in, ids.PID(fmt.Sprintf("M%d", i)), i, table)
					}()
				}
				owner := locktable.Owner("bench-owner")
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					item := fmt.Sprintf("db/t%d", i%4)
					g, err := patterns.RequestLock(ctx, in, "C", owner, item, write)
					if err != nil {
						b.Fatal(err)
					}
					if g {
						if err := patterns.ReleaseLock(ctx, in, "C", owner, item, write); err != nil {
							b.Fatal(err)
						}
					}
				}
				b.StopTimer()
				cancel()
				in.Close()
				wg.Wait()
			})
		}
	}
}

// BenchmarkE06CSPBroadcast measures Figure 6's broadcast on the CSP
// substrate: one full parallel command per iteration.
func BenchmarkE06CSPBroadcast(b *testing.B) {
	const n = 5
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		sys := csp.NewSystem().
			Process("transmitter", func(p *csp.Proc) error {
				sent := make([]bool, n+1)
				return p.Rep(func() []csp.Guard {
					guards := make([]csp.Guard, 0, n)
					for k := 1; k <= n; k++ {
						k := k
						guards = append(guards, csp.OnSend(csp.Name("recipient", k), "", i,
							func(any) error { sent[k] = true; return nil }).When(!sent[k]))
					}
					return guards
				})
			}).
			ProcessArray("recipient", n, func(p *csp.Proc) error {
				_, err := p.Recv("transmitter")
				return err
			})
		if err := sys.Run(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE07CSPTranslation measures the translated broadcast (supervisor
// p_s) against BenchmarkE03StarBroadcast/N=4: the overhead of Figure 7's
// centralized coordination.
func BenchmarkE07CSPTranslation(b *testing.B) {
	const n = 4
	def := patterns.StarBroadcast(n)
	host, err := cspx.New(def)
	if err != nil {
		b.Fatal(err)
	}
	binding := map[ids.RoleRef]string{ids.Role(patterns.RoleSender): "T"}
	for i := 1; i <= n; i++ {
		binding[ids.Member(patterns.RoleRecipient, i)] = csp.Name("q", i)
	}
	rounds := b.N
	sys := csp.NewSystem().
		Process("T", func(p *csp.Proc) error {
			for r := 0; r < rounds; r++ {
				if _, err := host.Enroll(p, ids.Role(patterns.RoleSender), binding, []any{r}); err != nil {
					return err
				}
			}
			return nil
		}).
		ProcessArray("q", n, func(p *csp.Proc) error {
			for r := 0; r < rounds; r++ {
				if _, err := host.Enroll(p, ids.Member(patterns.RoleRecipient, p.Index()), binding, nil); err != nil {
					return err
				}
			}
			return nil
		})
	host.AddSupervisor(sys, rounds)
	b.ResetTimer()
	if err := sys.Run(context.Background()); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkE08AdaBroadcast measures Figure 8's reverse broadcast on the Ada
// substrate: one program run per iteration.
func BenchmarkE08AdaBroadcast(b *testing.B) {
	const n = 5
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		p := ada.NewProgram()
		sender := p.Task("sender", nil)
		receive := sender.Entry("receive")
		sender.SetBody(func(tk *ada.Task) error {
			for completed := 0; completed < n; completed++ {
				if err := tk.Accept(receive, func([]any) ([]any, error) {
					return []any{i}, nil
				}); err != nil {
					return err
				}
			}
			return nil
		})
		for r := 1; r <= n; r++ {
			p.Task(fmt.Sprintf("r%d", r), func(tk *ada.Task) error {
				_, err := receive.Call(tk.Context())
				return err
			})
		}
		if err := p.Run(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE09AdaTranslation measures the Ada translation's performance
// cost (m+1 tasks, start/stop entry pairs per enrollment).
func BenchmarkE09AdaTranslation(b *testing.B) {
	const n = 4
	host, err := adax.New(patterns.StarBroadcast(n))
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := host.Start(ctx); err != nil {
		b.Fatal(err)
	}
	var wg sync.WaitGroup
	rounds := b.N
	b.ResetTimer()
	for i := 1; i <= n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if _, err := host.Enroll(ctx, ids.Member(patterns.RoleRecipient, i), nil); err != nil {
					return
				}
			}
		}()
	}
	for r := 0; r < rounds; r++ {
		if _, err := host.Enroll(ctx, ids.Role(patterns.RoleSender), []any{r}); err != nil {
			b.Fatal(err)
		}
	}
	wg.Wait()
	b.StopTimer()
	if err := host.Shutdown(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkE10MonitorMailbox measures the paper's two monitor packagings on
// independent pair traffic: the shared monitor serializes, the per-mailbox
// scheme does not.
func BenchmarkE10MonitorMailbox(b *testing.B) {
	const pairs = 4
	def := core.NewScript("pair_exchange").
		Family("left", pairs, func(rc core.Ctx) error {
			for m := 0; m < 50; m++ {
				if err := rc.Send(ids.Member("right", rc.Index()), m); err != nil {
					return err
				}
			}
			return nil
		}).
		Family("right", pairs, func(rc core.Ctx) error {
			for m := 0; m < 50; m++ {
				if _, err := rc.Recv(ids.Member("left", rc.Index())); err != nil {
					return err
				}
			}
			return nil
		}).
		MustBuild()

	for _, shared := range []bool{false, true} {
		name := "monitors=per-mailbox"
		opts := []monx.Option{monx.WithCapacity(8)}
		if shared {
			name = "monitors=shared"
			opts = append(opts, monx.WithSharedMonitor())
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				h, err := monx.New(def, opts...)
				if err != nil {
					b.Fatal(err)
				}
				var wg sync.WaitGroup
				for p := 1; p <= pairs; p++ {
					p := p
					wg.Add(2)
					go func() {
						defer wg.Done()
						_, _ = h.Enroll(ids.Member("left", p), nil)
					}()
					go func() {
						defer wg.Done()
						_, _ = h.Enroll(ids.Member("right", p), nil)
					}()
				}
				wg.Wait()
			}
		})
	}
}

// BenchmarkE11BroadcastStrategies measures the DES itself across strategy
// and size (the model behind the Section II comparison).
func BenchmarkE11BroadcastStrategies(b *testing.B) {
	for _, n := range []int{16, 256, 1024} {
		p := sim.Params{Recipients: n, Items: 1, SendOverhead: 1, Latency: 5, Fanout: 2}
		b.Run(fmt.Sprintf("strategy=star/N=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sim.Star(p)
			}
		})
		b.Run(fmt.Sprintf("strategy=tree/N=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sim.Tree(p)
			}
		})
		b.Run(fmt.Sprintf("strategy=pipeline/N=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sim.Pipeline(p)
			}
		})
	}
}

// BenchmarkE12OpenEnded measures dynamic-extent performances (Section V's
// open-ended scripts): one gather performance per iteration.
func BenchmarkE12OpenEnded(b *testing.B) {
	for _, n := range []int{2, 8, 32} {
		b.Run(fmt.Sprintf("extent=%d", n), func(b *testing.B) {
			def := core.NewScript("gather").
				Role("hub", func(rc core.Ctx) error {
					// Open family: between rounds some workers may not have
					// re-enrolled when the performance commits; the paper's
					// Terminated predicate skips the absent ones.
					for i := 1; i <= rc.FamilySize("w"); i++ {
						m := ids.Member("w", i)
						if rc.Terminated(m) {
							continue
						}
						if _, err := rc.Recv(m); err != nil {
							return err
						}
					}
					return nil
				}).
				OpenFamily("w", func(rc core.Ctx) error {
					return rc.Send(ids.Role("hub"), rc.Index())
				}).
				CriticalSet(ids.Role("hub")).
				MustBuild()
			in := core.NewInstance(def)
			defer in.Close()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var wg sync.WaitGroup
			for i := 1; i <= n; i++ {
				i := i
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						if _, err := in.Enroll(ctx, core.Enrollment{
							PID: ids.PID(fmt.Sprintf("W%d", i)), Role: ids.Member("w", i),
						}); err != nil {
							return
						}
					}
				}()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := in.Enroll(ctx, core.Enrollment{PID: "H", Role: ids.Role("hub")}); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			cancel()
			in.Close()
			wg.Wait()
		})
	}
}

// BenchmarkE13DistributedEnrollment measures multiway-synchronization
// rounds: centralized coordinator vs decentralized ring token.
func BenchmarkE13DistributedEnrollment(b *testing.B) {
	for _, n := range []int{2, 8, 32} {
		for _, kind := range []string{"central", "ring", "tree"} {
			b.Run(fmt.Sprintf("kind=%s/N=%d", kind, n), func(b *testing.B) {
				var s dist.Synchronizer
				switch kind {
				case "central":
					s = dist.NewCentral(n)
				case "ring":
					s = dist.NewRing(n)
				default:
					s = dist.NewTree(n)
				}
				defer s.Close()
				ctx := context.Background()
				rounds := b.N
				var wg sync.WaitGroup
				b.ResetTimer()
				for i := 2; i <= n; i++ {
					i := i
					wg.Add(1)
					go func() {
						defer wg.Done()
						for r := 0; r < rounds; r++ {
							if _, err := s.Enroll(ctx, i); err != nil {
								return
							}
						}
					}()
				}
				for r := 0; r < rounds; r++ {
					if _, err := s.Enroll(ctx, 1); err != nil {
						b.Fatal(err)
					}
				}
				wg.Wait()
			})
		}
	}
}

// BenchmarkE15ContendedEnrollment measures the scheduler's per-performance
// cost under heavy contention for one role: N concurrent enrollers
// collectively complete b.N single-role performances. This is the hot path
// the targeted-wakeup/incremental-match scheduler optimizes — under the old
// broadcast scheme every performance woke all N contenders and each re-ran
// the full match under the instance lock.
func BenchmarkE15ContendedEnrollment(b *testing.B) {
	for _, n := range []int{4, 64} {
		b.Run(fmt.Sprintf("workers=%d", n), func(b *testing.B) {
			def := core.NewScript("slot").
				Role("only", func(rc core.Ctx) error { return nil }).
				MustBuild()
			in := core.NewInstance(def)
			defer in.Close()
			var next atomic.Int64
			var failures atomic.Int64
			var wg sync.WaitGroup
			b.ResetTimer()
			for w := 0; w < n; w++ {
				pid := ids.PID(fmt.Sprintf("W%d", w))
				wg.Add(1)
				go func() {
					defer wg.Done()
					for next.Add(1) <= int64(b.N) {
						if _, err := in.Enroll(context.Background(), core.Enrollment{PID: pid, Role: ids.Role("only")}); err != nil {
							failures.Add(1)
							return
						}
					}
				}()
			}
			wg.Wait()
			b.StopTimer()
			if failures.Load() > 0 {
				b.Fatalf("%d enrollments failed", failures.Load())
			}
		})
	}
}

// BenchmarkE16PoolThroughput measures script.Pool against a single
// instance: 64 concurrent enrollers drive b.N single-role performances
// through a pool of 1 vs 4 instances. The role body blocks briefly
// (modeling an I/O-bound role): a single instance serializes the bodies by
// the successive-activations rule, while the pool overlaps one performance
// per instance (the paper's multiple-instances route to concurrency).
func BenchmarkE16PoolThroughput(b *testing.B) {
	def := script.New("slot").
		Role("only", func(rc script.Ctx) error {
			time.Sleep(20 * time.Microsecond)
			return nil
		}).
		MustBuild()
	for _, size := range []int{1, 4} {
		b.Run(fmt.Sprintf("instances=%d", size), func(b *testing.B) {
			pool := script.NewPool(def, size)
			defer pool.Close()
			const workers = 64
			var next atomic.Int64
			var failures atomic.Int64
			var wg sync.WaitGroup
			b.ResetTimer()
			for w := 0; w < workers; w++ {
				pid := script.PID(fmt.Sprintf("W%d", w))
				wg.Add(1)
				go func() {
					defer wg.Done()
					for next.Add(1) <= int64(b.N) {
						if _, err := pool.Enroll(context.Background(), script.Enrollment{
							PID: pid, Role: script.Role("only"),
						}); err != nil {
							failures.Add(1)
							return
						}
					}
				}()
			}
			wg.Wait()
			b.StopTimer()
			if failures.Load() > 0 {
				b.Fatalf("%d enrollments failed", failures.Load())
			}
		})
	}
}

// BenchmarkE14Fairness measures contended enrollment under the two
// contention policies.
func BenchmarkE14Fairness(b *testing.B) {
	for _, fairness := range []struct {
		name string
		f    match.Fairness
	}{{"fifo", match.FIFO}, {"arbitrary", match.Arbitrary}} {
		b.Run("policy="+fairness.name, func(b *testing.B) {
			def := core.NewScript("slot").
				Role("only", func(rc core.Ctx) error { return nil }).
				MustBuild()
			in := core.NewInstance(def, core.WithFairness(fairness.f, 42))
			defer in.Close()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			// Three background contenders keep the role contested.
			var wg sync.WaitGroup
			for c := 0; c < 3; c++ {
				pid := ids.PID(fmt.Sprintf("bg%d", c))
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						if _, err := in.Enroll(ctx, core.Enrollment{PID: pid, Role: ids.Role("only")}); err != nil {
							return
						}
					}
				}()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := in.Enroll(ctx, core.Enrollment{PID: "fg", Role: ids.Role("only")}); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			cancel()
			in.Close()
			wg.Wait()
		})
	}
}

// BenchmarkE17RemoteStarBroadcast is E03 pushed through the wire: a
// remote.Host serves the star broadcast on loopback TCP, n resident
// recipients re-enroll through a shared Enroller (one pooled connection
// per concurrent enrollment), and each iteration is one sender enrollment
// — a full broadcast performance whose every role body runs client-side,
// each communication op one request/response frame pair. Compare with E03
// at equal N for the process-boundary cost (BENCH_E7.json records it).
func BenchmarkE17RemoteStarBroadcast(b *testing.B) {
	for _, n := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			in := core.NewInstance(patterns.StarBroadcast(n))
			h := remote.NewHost(in, remote.HostConfig{})
			if err := h.Listen("127.0.0.1:0"); err != nil {
				b.Fatal(err)
			}
			go h.Serve()
			enr := remote.NewEnroller(h.Addr().String(), remote.EnrollerConfig{Script: "star_broadcast"})
			ctx, cancel := context.WithCancel(context.Background())
			recvBody := func(rc core.Ctx) error {
				v, err := rc.Recv(ids.Role(patterns.RoleSender))
				if err != nil {
					return err
				}
				rc.SetResult(0, v)
				return nil
			}
			tos := make([]ids.RoleRef, n)
			for i := 1; i <= n; i++ {
				tos[i-1] = ids.Member(patterns.RoleRecipient, i)
			}
			var wg sync.WaitGroup
			for i := 1; i <= n; i++ {
				pid := ids.PID(fmt.Sprintf("R%d", i))
				role := ids.Member(patterns.RoleRecipient, i)
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						if _, err := enr.Enroll(ctx, core.Enrollment{PID: pid, Role: role, Body: recvBody}); err != nil {
							return
						}
					}
				}()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				val := i
				_, err := enr.Enroll(ctx, core.Enrollment{
					PID: "T", Role: ids.Role(patterns.RoleSender),
					Body: func(rc core.Ctx) error { return rc.SendAll(tos, val) },
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			cancel()
			wg.Wait()
			enr.Close()
			h.Close()
			in.Close()
		})
	}
}
