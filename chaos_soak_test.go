package script_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/scriptabs/goscript/internal/chaos"
	"github.com/scriptabs/goscript/internal/conform"
	"github.com/scriptabs/goscript/internal/core"
	"github.com/scriptabs/goscript/internal/ids"
	"github.com/scriptabs/goscript/internal/trace"
)

// TestChaosSoak attaches the fault-injection harness to a busy instance —
// injected communication latency, dropped (late-redelivered) scheduler
// wakeups, spurious operation cancellations — and layers the runtime's own
// failure modes on top: panicking role bodies, pre-cancelled enrollments,
// and a performance deadline reclaiming whatever wedges. It then asserts
// the hardening contract: no deadlock (a watchdog guards the whole run), no
// lost enrollment (every offer resolves), a clean final Drain, and a trace
// that still satisfies the semantic invariants.
//
// The default run is short; SCRIPT_CHAOS_SOAK=30s (any Go duration)
// lengthens it, and the chaos build tag adds a fixed-seed 30-second variant
// for CI. The injector is seeded, so a failing seed reproduces the same
// fault decision stream.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak is not short")
	}
	dur := 1200 * time.Millisecond
	if s := os.Getenv("SCRIPT_CHAOS_SOAK"); s != "" {
		d, err := time.ParseDuration(s)
		if err != nil {
			t.Fatalf("SCRIPT_CHAOS_SOAK=%q: %v", s, err)
		}
		dur = d
	}
	runChaosSoak(t, 2026, dur)
}

func runChaosSoak(t *testing.T, seed int64, dur time.Duration) {
	inj := chaos.New(chaos.Config{
		Seed:           seed,
		OpDelayP:       0.20,
		OpDelayMax:     500 * time.Microsecond,
		WakeDelayP:     0.10,
		WakeDelayMax:   time.Millisecond,
		CancelP:        0.05,
		CancelAfterMax: time.Millisecond,
		FastDelayP:     0.20,
		FastDelayMax:   500 * time.Microsecond,
		FastEvictP:     0.10,
	})

	// A two-role rendezvous where either body may panic mid-performance:
	// the panicking role finishes with an error, its partner unwinds with
	// ErrRoleFinished, and the runtime must stay consistent throughout.
	def := core.NewScript("chaotic").
		Role("a", func(rc core.Ctx) error {
			if rc.Arg(0) == "panic" {
				panic("chaos: a panics")
			}
			return rc.Send(ids.Role("b"), 1)
		}).
		Role("b", func(rc core.Ctx) error {
			if rc.Arg(0) == "panic" {
				panic("chaos: b panics")
			}
			_, err := rc.Recv(ids.Role("a"))
			return err
		}).
		Initiation(core.DelayedInitiation).
		Termination(core.DelayedTermination).
		MustBuild()

	var log trace.Log
	in := core.NewInstance(def,
		core.WithTracer(&log),
		core.WithFaultInjection(inj),
		core.WithPerformanceDeadline(250*time.Millisecond),
	)

	const workers = 4 // per role
	var attempts, resolved atomic.Uint64
	stop := time.Now().Add(dur)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		for _, role := range []string{"a", "b"} {
			w, role := w, role
			wg.Add(1)
			go func() {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed + int64(w)*2 + int64(role[0])))
				for time.Now().Before(stop) {
					attempts.Add(1)
					ectx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
					if rng.Intn(10) == 0 {
						cancel() // withdrawn offer / interrupted performance
					}
					var args []any
					if rng.Intn(20) == 0 {
						args = []any{"panic"}
					}
					_, err := in.Enroll(ectx, core.Enrollment{
						PID:  ids.PID(fmt.Sprintf("%s%d", role, w)),
						Role: ids.Role(role),
						Args: args,
					})
					cancel()
					resolved.Add(1)
					switch {
					case err == nil,
						errors.Is(err, context.Canceled),
						errors.Is(err, context.DeadlineExceeded),
						errors.Is(err, core.ErrPerformanceAborted),
						errors.Is(err, core.ErrDraining),
						errors.Is(err, core.ErrClosed):
					default:
						var re *core.RoleError
						if !errors.As(err, &re) {
							t.Errorf("unexpected enrollment error class: %v", err)
							return
						}
					}
				}
			}()
		}
	}

	// Watchdog: the workload plus drain must finish well before this.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(dur + 30*time.Second):
		t.Fatalf("chaos soak deadlocked (seed %d): workers still blocked 30s past the workload window", seed)
	}

	dctx, dcancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer dcancel()
	if err := in.Drain(dctx); err != nil {
		t.Fatalf("final Drain = %v (seed %d)", err, seed)
	}
	if !in.Closed() {
		t.Fatalf("instance not closed after final Drain (seed %d)", seed)
	}
	if got, want := resolved.Load(), attempts.Load(); got != want {
		t.Fatalf("lost enrollments: %d attempted, %d resolved (seed %d)", want, got, seed)
	}
	if p := in.PendingEnrollments(); p != 0 {
		t.Fatalf("%d offers still pending after drain (seed %d)", p, seed)
	}

	for _, v := range conform.CheckSemantics(log.Events()) {
		t.Errorf("semantics (seed %d): %s", seed, v)
	}

	op, wake, cancels, decisions := inj.Stats()
	fastDelays, fastEvicts := inj.FastStats()
	t.Logf("seed %d: %d enrollments, %d fault decisions (%d op delays, %d wake drops, %d spurious cancels, %d fast delays, %d fast evicts), %d performances",
		seed, attempts.Load(), decisions, op, wake, cancels, fastDelays, fastEvicts, in.Performances())
	if decisions == 0 {
		t.Error("fault injector was never consulted — harness not wired in")
	}
}
