//go:build chaos

package script_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/scriptabs/goscript/internal/chaos"
	"github.com/scriptabs/goscript/internal/conform"
	"github.com/scriptabs/goscript/internal/core"
	"github.com/scriptabs/goscript/internal/ids"
	"github.com/scriptabs/goscript/internal/remote"
	"github.com/scriptabs/goscript/internal/trace"
)

// TestChaosSoakOverload saturates a capped host: 4× the admission cap of
// concurrent remote clients hammer one script instance while the injector
// fires extra ErrOverloaded bursts on top of the genuine cap sheds. The
// overload-protection contract under test:
//
//   - shedding is admission-only — zero in-flight performances abort (every
//     enrollment, admitted or retried, ultimately returns nil);
//   - every retrying client eventually completes under the backoff policy;
//   - the trace still conforms after the stampede.
//
// The matching side (role b) enrolls locally, bypassing host admission, so
// the cap can never be filled by unmatched offers of a single role — the
// soak exercises overload shedding, not an application-level pairing
// deadlock.
func TestChaosSoakOverload(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak is not short")
	}
	runChaosSoakOverload(t, 20260806)
}

func runChaosSoakOverload(t *testing.T, seed int64) {
	inj := chaos.New(chaos.Config{
		Seed: seed,
		// Injected overload bursts ride on top of the genuine cap sheds.
		// No drops or stalls: this soak asserts *zero* aborted
		// performances, so the only faults are admission-level ones that
		// must never touch admitted work.
		OverloadP: 0.05,
	})

	const (
		capN    = 4        // host admission cap
		clients = 4 * capN // concurrent remote enrollers: 4× the cap
		rounds  = 25       // completed enrollments per client
		total   = clients * rounds
	)

	def := core.NewScript("overload_net").
		Role("a", func(rc core.Ctx) error { return errors.New("local body must not run") }).
		Role("b", func(rc core.Ctx) error {
			_, err := rc.Recv(ids.Role("a"))
			return err
		}).
		Initiation(core.DelayedInitiation).
		Termination(core.DelayedTermination).
		MustBuild()

	var log trace.Log
	in := core.NewInstance(def, core.WithTracer(&log))

	h := remote.NewHost(in, remote.HostConfig{
		MaxEnrollments: capN,
		RetryAfter:     5 * time.Millisecond,
		Faults:         inj,
	})
	if err := h.Listen("127.0.0.1:0"); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	go h.Serve()
	addr := h.Addr().String()

	enr := remote.NewEnroller(addr, remote.EnrollerConfig{
		Script: "overload_net",
		Retry: remote.RetryPolicy{
			MaxAttempts: 10000,
			BaseBackoff: time.Millisecond,
			MaxBackoff:  25 * time.Millisecond,
			Seed:        seed,
		},
	})
	defer enr.Close()

	// Local b-side feeder: always ready to match an admitted a, stops once
	// every remote client is done.
	feedCtx, stopFeed := context.WithCancel(context.Background())
	defer stopFeed()
	var feedWG sync.WaitGroup
	var matched atomic.Uint64
	for f := 0; f < capN; f++ {
		feedWG.Add(1)
		go func(f int) {
			defer feedWG.Done()
			for feedCtx.Err() == nil {
				ctx, cancel := context.WithTimeout(feedCtx, time.Second)
				_, err := in.Enroll(ctx, core.Enrollment{PID: ids.PID(fmt.Sprintf("b%d", f)), Role: ids.Role("b")})
				cancel()
				switch {
				case err == nil:
					matched.Add(1)
				case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
					// No a to match inside the window; offer again.
				default:
					t.Errorf("local b enrollment: %v", err)
					return
				}
			}
		}(f)
	}

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
				_, err := enr.Enroll(ctx, core.Enrollment{
					PID:  ids.PID(fmt.Sprintf("a%d", c)),
					Role: ids.Role("a"),
					Body: func(rc core.Ctx) error { return rc.Send(ids.Role("b"), r) },
				})
				cancel()
				if err != nil {
					t.Errorf("client %d round %d did not complete under retry: %v", c, r, err)
					return
				}
			}
		}(c)
	}

	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(120 * time.Second):
		t.Fatalf("overload soak wedged (seed %d): clients still retrying after 120s", seed)
	}
	stopFeed()
	feedWG.Wait()

	dctx, dcancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer dcancel()
	if err := h.Drain(dctx); err != nil {
		t.Fatalf("final Drain = %v (seed %d)", err, seed)
	}

	if got := matched.Load(); got != total {
		t.Fatalf("matched %d b-sides, want %d (seed %d)", got, total, seed)
	}
	stats := h.Stats()
	if stats.ShedEnrollments == 0 {
		t.Errorf("no enrollments shed at 4× the admission cap — overload path never exercised (seed %d)", seed)
	}
	if inj.OverloadCount() == 0 {
		t.Errorf("overload fault injector never fired (seed %d)", seed)
	}
	for _, v := range conform.CheckSemantics(log.Events()) {
		t.Errorf("semantics (seed %d): %s", seed, v)
	}
	t.Logf("seed %d: %d enrollments completed, %d shed (%d injected bursts), %d performances",
		seed, total, stats.ShedEnrollments, inj.OverloadCount(), in.Performances())
}
