package script

import "fmt"

// The helpers below put Go generics behind the paper's genericity
// principle: "a script is as generic as its host programming language
// allows". Data parameters travel as `any` inside the runtime; these
// helpers give enrolling processes and role bodies typed access with
// descriptive errors instead of raw type assertions.

// Arg returns role data parameter i of rc as a T.
func Arg[T any](rc Ctx, i int) (T, error) {
	var zero T
	if i < 0 || i >= rc.NumArgs() {
		return zero, fmt.Errorf("script: role %s has %d args; no arg %d", rc.Role(), rc.NumArgs(), i)
	}
	v, ok := rc.Arg(i).(T)
	if !ok {
		return zero, fmt.Errorf("script: role %s arg %d has type %T, not %T", rc.Role(), i, rc.Arg(i), zero)
	}
	return v, nil
}

// Receive performs rc.Recv(from) and converts the value to T.
func Receive[T any](rc Ctx, from RoleRef) (T, error) {
	var zero T
	v, err := rc.Recv(from)
	if err != nil {
		return zero, err
	}
	tv, ok := v.(T)
	if !ok {
		return zero, fmt.Errorf("script: %s received %T from %s, want %T", rc.Role(), v, from, zero)
	}
	return tv, nil
}

// ReceiveTag performs rc.RecvTag(from, tag) and converts the value to T.
func ReceiveTag[T any](rc Ctx, from RoleRef, tag string) (T, error) {
	var zero T
	v, err := rc.RecvTag(from, tag)
	if err != nil {
		return zero, err
	}
	tv, ok := v.(T)
	if !ok {
		return zero, fmt.Errorf("script: %s received %T from %s (%s), want %T", rc.Role(), v, from, tag, zero)
	}
	return tv, nil
}

// Value returns result (out) parameter i of a completed enrollment as a T.
func Value[T any](res Result, i int) (T, error) {
	var zero T
	if i < 0 || i >= len(res.Values) {
		return zero, fmt.Errorf("script: role %s returned %d values; no value %d", res.Role, len(res.Values), i)
	}
	v, ok := res.Values[i].(T)
	if !ok {
		return zero, fmt.Errorf("script: role %s value %d has type %T, not %T", res.Role, i, res.Values[i], zero)
	}
	return v, nil
}
