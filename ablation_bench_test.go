// Ablation benchmarks for the design choices DESIGN.md calls out: the same
// workload with one semantic knob flipped at a time.
package script_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"github.com/scriptabs/goscript/internal/core"
	"github.com/scriptabs/goscript/internal/ids"
	"github.com/scriptabs/goscript/internal/patterns"
)

// BenchmarkAblationInitiationPolicy runs one identical star-shaped body
// under delayed vs immediate initiation (same termination), isolating the
// cost of atomic matching vs incremental admission.
func BenchmarkAblationInitiationPolicy(b *testing.B) {
	const n = 8
	for _, init := range []core.Initiation{core.DelayedInitiation, core.ImmediateInitiation} {
		b.Run("initiation="+init.String(), func(b *testing.B) {
			def := core.NewScript("abl_init").
				Role("s", func(rc core.Ctx) error {
					for i := 1; i <= n; i++ {
						if err := rc.Send(ids.Member("r", i), 1); err != nil {
							return err
						}
					}
					return nil
				}).
				Family("r", n, func(rc core.Ctx) error {
					_, err := rc.Recv(ids.Role("s"))
					return err
				}).
				Initiation(init).
				Termination(core.ImmediateTermination).
				MustBuild()
			runAblationBroadcast(b, def, n)
		})
	}
}

// BenchmarkAblationTerminationPolicy isolates delayed vs immediate release.
func BenchmarkAblationTerminationPolicy(b *testing.B) {
	const n = 8
	for _, term := range []core.Termination{core.DelayedTermination, core.ImmediateTermination} {
		b.Run("termination="+term.String(), func(b *testing.B) {
			def := core.NewScript("abl_term").
				Role("s", func(rc core.Ctx) error {
					for i := 1; i <= n; i++ {
						if err := rc.Send(ids.Member("r", i), 1); err != nil {
							return err
						}
					}
					return nil
				}).
				Family("r", n, func(rc core.Ctx) error {
					_, err := rc.Recv(ids.Role("s"))
					return err
				}).
				Initiation(core.DelayedInitiation).
				Termination(term).
				MustBuild()
			runAblationBroadcast(b, def, n)
		})
	}
}

// BenchmarkAblationPartnerNaming compares partners-unnamed enrollment with
// full partners-named enrollment (every participant pins every other),
// isolating the matcher's constraint-checking cost.
func BenchmarkAblationPartnerNaming(b *testing.B) {
	const n = 4
	def := patterns.StarBroadcast(n)

	fullBinding := func() map[ids.RoleRef]ids.PIDSet {
		with := map[ids.RoleRef]ids.PIDSet{ids.Role(patterns.RoleSender): ids.NewPIDSet("T")}
		for i := 1; i <= n; i++ {
			with[ids.Member(patterns.RoleRecipient, i)] = ids.NewPIDSet(ids.PID(fmt.Sprintf("R%d", i)))
		}
		return with
	}

	for _, named := range []bool{false, true} {
		name := "naming=unnamed"
		if named {
			name = "naming=full"
		}
		b.Run(name, func(b *testing.B) {
			in := core.NewInstance(def)
			defer in.Close()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var wg sync.WaitGroup
			for i := 1; i <= n; i++ {
				i := i
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						e := core.Enrollment{
							PID: ids.PID(fmt.Sprintf("R%d", i)), Role: ids.Member(patterns.RoleRecipient, i),
						}
						if named {
							e.With = fullBinding()
						}
						if _, err := in.Enroll(ctx, e); err != nil {
							return
						}
					}
				}()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e := core.Enrollment{PID: "T", Role: ids.Role(patterns.RoleSender), Args: []any{i}}
				if named {
					e.With = fullBinding()
				}
				if _, err := in.Enroll(ctx, e); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			cancel()
			in.Close()
			wg.Wait()
		})
	}
}

// BenchmarkAblationCriticalSets compares a lock-manager-shaped script with
// explicit critical sets (reader XOR writer suffices) against an
// all-roles-critical variant where both must always enroll.
func BenchmarkAblationCriticalSets(b *testing.B) {
	const k = 3
	build := func(withCritical bool) core.Definition {
		builder := core.NewScript("abl_crit").
			Family("m", k, func(rc core.Ctx) error {
				for _, client := range []ids.RoleRef{ids.Role("rd"), ids.Role("wr")} {
					if rc.Terminated(client) {
						continue
					}
					if _, err := rc.Recv(client); err != nil {
						return err
					}
				}
				return nil
			}).
			Role("rd", func(rc core.Ctx) error {
				for i := 1; i <= k; i++ {
					if err := rc.Send(ids.Member("m", i), "r"); err != nil {
						return err
					}
				}
				return nil
			}).
			Role("wr", func(rc core.Ctx) error {
				for i := 1; i <= k; i++ {
					if err := rc.Send(ids.Member("m", i), "w"); err != nil {
						return err
					}
				}
				return nil
			})
		if withCritical {
			managers := ids.FamilyMembers("m", k)
			builder = builder.
				CriticalSet(append(append([]ids.RoleRef{}, managers...), ids.Role("rd"))...).
				CriticalSet(append(append([]ids.RoleRef{}, managers...), ids.Role("wr"))...)
		}
		return builder.MustBuild()
	}

	// With critical sets only the reader enrolls per performance; without,
	// a writer must participate in every performance too.
	for _, withCritical := range []bool{true, false} {
		name := "critical=declared"
		if !withCritical {
			name = "critical=all-roles"
		}
		b.Run(name, func(b *testing.B) {
			in := core.NewInstance(build(withCritical))
			defer in.Close()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var wg sync.WaitGroup
			for i := 1; i <= k; i++ {
				i := i
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						if _, err := in.Enroll(ctx, core.Enrollment{
							PID: ids.PID(fmt.Sprintf("M%d", i)), Role: ids.Member("m", i),
						}); err != nil {
							return
						}
					}
				}()
			}
			if !withCritical {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						if _, err := in.Enroll(ctx, core.Enrollment{PID: "W", Role: ids.Role("wr")}); err != nil {
							return
						}
					}
				}()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := in.Enroll(ctx, core.Enrollment{PID: "R", Role: ids.Role("rd")}); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			cancel()
			in.Close()
			wg.Wait()
		})
	}
}

// runAblationBroadcast drives b.N performances of a star-shaped def.
func runAblationBroadcast(b *testing.B, def core.Definition, n int) {
	b.Helper()
	in := core.NewInstance(def)
	defer in.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i := 1; i <= n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if _, err := in.Enroll(ctx, core.Enrollment{
					PID: ids.PID(fmt.Sprintf("R%d", i)), Role: ids.Member("r", i),
				}); err != nil {
					return
				}
			}
		}()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := in.Enroll(ctx, core.Enrollment{PID: "T", Role: ids.Role("s")}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	cancel()
	in.Close()
	wg.Wait()
}
