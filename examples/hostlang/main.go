// Hostlang: the paper's Section IV in one program — the *same* star
// broadcast script definition executed on four runtimes: the native Go
// runtime, the CSP translation (supervisor process p_s), the Ada
// translation (role tasks with start/stop entries plus a supervisor task),
// and the monitor embedding (one mailbox monitor per role).
//
//	go run ./examples/hostlang
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"github.com/scriptabs/goscript/internal/core"
	"github.com/scriptabs/goscript/internal/csp"
	"github.com/scriptabs/goscript/internal/ids"
	"github.com/scriptabs/goscript/internal/patterns"
	"github.com/scriptabs/goscript/internal/trans/adax"
	"github.com/scriptabs/goscript/internal/trans/cspx"
	"github.com/scriptabs/goscript/internal/trans/monx"
)

const n = 3

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	def := patterns.StarBroadcast(n)
	fmt.Printf("one script definition (%q), four hosts:\n\n", def.Name())
	native(ctx, def)
	onCSP(ctx, def)
	onAda(ctx, def)
	onMonitors(def)
}

func report(host string, values []any) {
	fmt.Printf("%-18s recipients received %v\n", host, values)
}

func native(ctx context.Context, def core.Definition) {
	in := core.NewInstance(def)
	defer in.Close()
	values := make([]any, n)
	var wg sync.WaitGroup
	for i := 1; i <= n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := in.Enroll(ctx, core.Enrollment{
				PID: ids.PID(fmt.Sprintf("P%d", i)), Role: ids.Member("recipient", i),
			})
			if err != nil {
				log.Fatalf("native recipient %d: %v", i, err)
			}
			values[i-1] = res.Values[0]
		}()
	}
	if _, err := in.Enroll(ctx, core.Enrollment{
		PID: "T", Role: ids.Role("sender"), Args: []any{"native"},
	}); err != nil {
		log.Fatalf("native sender: %v", err)
	}
	wg.Wait()
	report("native runtime:", values)
}

func onCSP(ctx context.Context, def core.Definition) {
	host, err := cspx.New(def)
	if err != nil {
		log.Fatalf("cspx: %v", err)
	}
	binding := map[ids.RoleRef]string{ids.Role("sender"): "T"}
	for i := 1; i <= n; i++ {
		binding[ids.Member("recipient", i)] = csp.Name("q", i)
	}
	values := make([]any, n)
	var mu sync.Mutex
	sys := csp.NewSystem().
		Process("T", func(p *csp.Proc) error {
			_, err := host.Enroll(p, ids.Role("sender"), binding, []any{"csp"})
			return err
		}).
		ProcessArray("q", n, func(p *csp.Proc) error {
			outs, err := host.Enroll(p, ids.Member("recipient", p.Index()), binding, nil)
			if err != nil {
				return err
			}
			mu.Lock()
			values[p.Index()-1] = outs[0]
			mu.Unlock()
			return nil
		})
	host.AddSupervisor(sys, 1)
	if err := sys.Run(ctx); err != nil {
		log.Fatalf("csp system: %v", err)
	}
	report("CSP translation:", values)
}

func onAda(ctx context.Context, def core.Definition) {
	host, err := adax.New(def)
	if err != nil {
		log.Fatalf("adax: %v", err)
	}
	if err := host.Start(ctx); err != nil {
		log.Fatalf("adax start: %v", err)
	}
	values := make([]any, n)
	var wg sync.WaitGroup
	for i := 1; i <= n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			outs, err := host.Enroll(ctx, ids.Member("recipient", i), nil)
			if err != nil {
				log.Fatalf("ada recipient %d: %v", i, err)
			}
			values[i-1] = outs[0]
		}()
	}
	if _, err := host.Enroll(ctx, ids.Role("sender"), []any{"ada"}); err != nil {
		log.Fatalf("ada sender: %v", err)
	}
	wg.Wait()
	if err := host.Shutdown(); err != nil {
		log.Fatalf("adax shutdown: %v", err)
	}
	report(fmt.Sprintf("Ada (%d tasks):", host.TaskCount()), values)
}

func onMonitors(def core.Definition) {
	host, err := monx.New(def)
	if err != nil {
		log.Fatalf("monx: %v", err)
	}
	values := make([]any, n)
	var wg sync.WaitGroup
	for i := 1; i <= n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			outs, err := host.Enroll(ids.Member("recipient", i), nil)
			if err != nil {
				log.Fatalf("monitor recipient %d: %v", i, err)
			}
			values[i-1] = outs[0]
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := host.Enroll(ids.Role("sender"), []any{"monitors"}); err != nil {
			log.Fatalf("monitor sender: %v", err)
		}
	}()
	wg.Wait()
	report("monitor mailboxes:", values)
}
