// Remotecast: the quickstart broadcast with the script machinery in
// another OS process. Start the daemon first:
//
//	go run ./cmd/scriptd -script star_broadcast -n 3 -addr 127.0.0.1:7341
//
// then run this program (in one or several terminals — the four parties
// may be split across processes arbitrarily):
//
//	go run ./examples/remotecast -addr 127.0.0.1:7341
//
// Every role body below executes in THIS process; the daemon only hosts
// the shared performance state — matching, rendezvous, deadlines, abort.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"strings"
	"sync"
	"time"

	"github.com/scriptabs/goscript/internal/core"
	"github.com/scriptabs/goscript/internal/ids"
	"github.com/scriptabs/goscript/internal/remote"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7341", "scriptd address")
	msgs := flag.String("msgs", "hello,world", "comma-separated broadcasts, one performance each")
	flag.Parse()
	values := strings.Split(*msgs, ",")

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	enr := remote.NewEnroller(*addr, remote.EnrollerConfig{Script: "star_broadcast"})
	defer enr.Close()

	var wg sync.WaitGroup
	for i := 1; i <= 3; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range values {
				res, err := enr.Enroll(ctx, core.Enrollment{
					PID:  ids.PID(fmt.Sprintf("listener-%d", i)),
					Role: ids.Member("recipient", i),
					Body: func(rc core.Ctx) error {
						v, err := rc.Recv(ids.Role("sender"))
						if err != nil {
							return err
						}
						rc.SetResult(0, v)
						return nil
					},
				})
				if err != nil {
					log.Printf("listener-%d: %v", i, err)
					return
				}
				fmt.Printf("performance %d: listener-%d received %v\n",
					res.Performance, i, res.Values[0])
			}
		}()
	}

	for _, msg := range values {
		msg := msg
		if _, err := enr.Enroll(ctx, core.Enrollment{
			PID:  "announcer",
			Role: ids.Role("sender"),
			Body: func(rc core.Ctx) error {
				for i := 1; i <= 3; i++ {
					if err := rc.Send(ids.Member("recipient", i), msg); err != nil {
						return err
					}
				}
				return nil
			},
		}); err != nil {
			log.Fatalf("announcer: %v", err)
		}
	}
	wg.Wait()
}
