// Pipeline: streaming through scripts with immediate initiation and
// termination. A bounded-buffer script decouples a fast producer from a
// slow consumer, and a pipeline broadcast shows late joiners receiving a
// value from a sender that has long since left the script (Figure 4's
// behaviour).
//
//	go run ./examples/pipeline
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"github.com/scriptabs/goscript/internal/core"
	"github.com/scriptabs/goscript/internal/ids"
	"github.com/scriptabs/goscript/internal/patterns"
)

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	bufferedStream(ctx)
	fmt.Println()
	lateJoiners(ctx)
}

// bufferedStream runs one performance of the bounded-buffer script: the
// producer streams ten readings through a capacity-3 buffer role to the
// consumer. Neither endpoint knows the buffering regime — that is the
// abstraction the paper's introduction asks for.
func bufferedStream(ctx context.Context) {
	fmt.Println("== bounded-buffer script (capacity 3)")
	in := core.NewInstance(patterns.BoundedBuffer(3))
	defer in.Close()

	items := make([]any, 10)
	for i := range items {
		items[i] = fmt.Sprintf("reading-%02d", i)
	}
	go func() {
		if err := patterns.Produce(ctx, in, "sensor", items...); err != nil {
			log.Printf("producer: %v", err)
		}
	}()
	go func() {
		if err := patterns.RunBuffer(ctx, in, "relay"); err != nil {
			log.Printf("buffer: %v", err)
		}
	}()
	got, err := patterns.Consume(ctx, in, "sink")
	if err != nil {
		log.Fatalf("consumer: %v", err)
	}
	fmt.Printf("sink consumed %d items in order: %v ... %v\n", len(got), got[0], got[len(got)-1])
}

// lateJoiners runs the Figure 4 pipeline: the sender hands off to
// recipient 1 and leaves; recipients 2..5 enroll only afterwards and still
// receive the value, because immediate initiation keeps the performance
// open for them.
func lateJoiners(ctx context.Context) {
	const n = 5
	fmt.Println("== pipeline broadcast with late joiners (Figure 4)")
	in := core.NewInstance(patterns.PipelineBroadcast(n))
	defer in.Close()

	r1 := make(chan error, 1)
	go func() {
		_, err := in.Enroll(ctx, core.Enrollment{PID: "node-1", Role: ids.Member("recipient", 1)})
		r1 <- err
	}()

	if _, err := in.Enroll(ctx, core.Enrollment{
		PID: "origin", Role: ids.Role("sender"), Args: []any{"the-update"},
	}); err != nil {
		log.Fatalf("sender: %v", err)
	}
	fmt.Println("origin handed the value to node-1 and was released (immediate termination)")

	// node-1 is still inside the script: it blocks forwarding until node-2
	// arrives ("this technique allows roles to block at send or receive
	// operations if the neighbouring role is not available").
	var wg sync.WaitGroup
	for i := 2; i <= n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := in.Enroll(ctx, core.Enrollment{
				PID: ids.PID(fmt.Sprintf("node-%d", i)), Role: ids.Member("recipient", i),
			})
			if err != nil {
				log.Printf("node-%d: %v", i, err)
				return
			}
			fmt.Printf("node-%d joined late and received %v\n", i, res.Values[0])
		}()
	}
	wg.Wait()
	if err := <-r1; err != nil {
		log.Fatalf("node-1: %v", err)
	}
}
