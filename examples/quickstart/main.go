// Quickstart: define a broadcast script, enroll a sender and three
// recipients, and run two performances — entirely through the public API.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	script "github.com/scriptabs/goscript"
)

func main() {
	// The script localizes the communication pattern: a sender role and a
	// family of three recipient roles. Only the script body knows the
	// broadcast is a star; enrolling processes just supply and receive
	// values.
	def := script.New("broadcast").
		Role("sender", func(rc script.Ctx) error {
			for i := 1; i <= 3; i++ {
				if err := rc.Send(script.Member("recipient", i), rc.Arg(0)); err != nil {
					return err
				}
			}
			return nil
		}).
		Family("recipient", 3, func(rc script.Ctx) error {
			v, err := rc.Recv(script.Role("sender"))
			if err != nil {
				return err
			}
			rc.SetResult(0, v)
			return nil
		}).
		Initiation(script.DelayedInitiation).
		Termination(script.DelayedTermination).
		MustBuild()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	in := script.NewInstance(def)
	defer in.Close()

	// Three recipient processes enroll repeatedly; each Enroll call is one
	// participation in one performance.
	var wg sync.WaitGroup
	for i := 1; i <= 3; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 1; round <= 2; round++ {
				res, err := in.Enroll(ctx, script.Enrollment{
					PID:  script.PID(fmt.Sprintf("listener-%d", i)),
					Role: script.Member("recipient", i),
				})
				if err != nil {
					log.Printf("listener-%d: %v", i, err)
					return
				}
				fmt.Printf("performance %d: listener-%d received %v\n",
					res.Performance, i, res.Values[0])
			}
		}()
	}

	// The sender enrolls twice; the successive-activations rule keeps the
	// two performances apart, so round 1 delivers "hello" and round 2
	// delivers "world" — never a mix.
	for _, msg := range []string{"hello", "world"} {
		if _, err := in.Enroll(ctx, script.Enrollment{
			PID:  "announcer",
			Role: script.Role("sender"),
			Args: []any{msg},
		}); err != nil {
			log.Fatalf("announcer: %v", err)
		}
	}
	wg.Wait()
}
