// Lockmanager: the paper's replicated-database example (Figure 5) as a
// running system — k lock-manager processes, contending readers and
// writers, and a live membership change that hands a manager's lock table
// to its replacement (the "separate script" the paper mentions).
//
//	go run ./examples/lockmanager
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"github.com/scriptabs/goscript/internal/core"
	"github.com/scriptabs/goscript/internal/ids"
	"github.com/scriptabs/goscript/internal/locktable"
	"github.com/scriptabs/goscript/internal/patterns"
)

const k = 3 // replicas holding copies of the database

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	strat := patterns.OneReadAllWrite()
	lockInst := core.NewInstance(patterns.LockManager(k, strat))
	defer lockInst.Close()
	memberInst := core.NewInstance(patterns.MembershipChange())
	defer memberInst.Close()

	// Manager processes: each owns a lock table that survives across
	// performances and across membership changes.
	mctx, stopManagers := context.WithCancel(ctx)
	var managers sync.WaitGroup
	runManager := func(runCtx context.Context, pid ids.PID, slot int, table any) {
		managers.Add(1)
		go func() {
			defer managers.Done()
			if err := patterns.RunManager(runCtx, lockInst, pid, slot, table); err != nil {
				log.Printf("%s: %v", pid, err)
			}
		}()
	}
	tables := make([]any, k+1)
	mgr2Ctx, stopMgr2 := context.WithCancel(mctx)
	for i := 1; i <= k; i++ {
		tables[i] = strat.NewTable()
		runCtx := mctx
		if i == 2 {
			runCtx = mgr2Ctx // mgr-2 will leave during phase 2
		}
		runManager(runCtx, ids.PID(fmt.Sprintf("mgr-%d", i)), i, tables[i])
	}

	// A writer takes the item; a reader is denied; the writer releases.
	must := func(g bool, err error) bool {
		if err != nil {
			log.Fatal(err)
		}
		return g
	}
	fmt.Println("== phase 1: one lock to read, all locks to write")
	fmt.Printf("writer locks accounts/alice: granted=%v\n",
		must(patterns.RequestLock(ctx, lockInst, "W", "writer-1", "accounts/alice", true)))
	fmt.Printf("reader locks accounts/alice: granted=%v (writer holds it)\n",
		must(patterns.RequestLock(ctx, lockInst, "R", "reader-1", "accounts/alice", false)))
	if err := patterns.ReleaseLock(ctx, lockInst, "W", "writer-1", "accounts/alice", true); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reader retries after release:  granted=%v\n",
		must(patterns.RequestLock(ctx, lockInst, "R", "reader-1", "accounts/alice", false)))

	if err := patterns.ReleaseLock(ctx, lockInst, "R", "reader-1", "accounts/alice", false); err != nil {
		log.Fatal(err)
	}

	// Membership change: mgr-2 leaves; mgr-9 joins, inheriting mgr-2's
	// table — the paper: "the lock tables are preserved by such a change".
	// writer-1 takes the write lock at ALL managers first; after the
	// change, a reader probing slot 2 must still be denied. (A fresh table
	// at slot 2 would wrongly grant that read.)
	fmt.Println("\n== phase 2: membership change (mgr-2 leaves, mgr-9 joins)")
	fmt.Printf("writer locks accounts/alice at all %d managers: granted=%v\n", k,
		must(patterns.RequestLock(ctx, lockInst, "W", "writer-1", "accounts/alice", true)))
	stopMgr2() // mgr-2 stops offering manager[2]
	joinDone := make(chan any, 1)
	go func() {
		inherited, err := patterns.Join(ctx, memberInst, "mgr-9")
		if err != nil {
			log.Fatal(err)
		}
		joinDone <- inherited
	}()
	if err := patterns.Leave(ctx, memberInst, "mgr-2", tables[2], "mgr-9 replaces mgr-2"); err != nil {
		log.Fatal(err)
	}
	inherited := <-joinDone
	fmt.Println("mgr-9 inherited mgr-2's lock table")
	runManager(mctx, "mgr-9", 2, inherited) // mgr-9 takes over slot 2

	// The read quorum is 1, but every manager — including mgr-9 with the
	// inherited table — must deny while writer-1 holds the write lock.
	fmt.Printf("reader probes accounts/alice: granted=%v (write lock survived the change)\n",
		must(patterns.RequestLock(ctx, lockInst, "R", "reader-1", "accounts/alice", false)))
	if t, ok := inherited.(*locktable.Table); ok {
		fmt.Printf("mgr-9's inherited table holds %d locked item(s)\n", t.Len())
	}
	if err := patterns.ReleaseLock(ctx, lockInst, "W", "writer-1", "accounts/alice", true); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reader retries after the writer releases: granted=%v\n",
		must(patterns.RequestLock(ctx, lockInst, "R", "reader-1", "accounts/alice", false)))

	stopManagers()
	lockInst.Close()
	managers.Wait()
	fmt.Println("\ndone")
}
