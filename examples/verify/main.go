// Verify: the paper's Section V program in action — "scripts will simplify
// the specification of communication subsystems and make the verification
// of such systems more practical." This example records the execution trace
// of two broadcast scripts and checks it against (a) the script runtime's
// semantic invariants and (b) a communication *specification*: which role
// may talk to which. The pipeline's trace deliberately fails the star's
// specification, showing that the checker distinguishes the strategies a
// script can hide.
//
//	go run ./examples/verify
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"github.com/scriptabs/goscript/internal/conform"
	"github.com/scriptabs/goscript/internal/core"
	"github.com/scriptabs/goscript/internal/ids"
	"github.com/scriptabs/goscript/internal/patterns"
	"github.com/scriptabs/goscript/internal/trace"
)

const n = 4

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	starEvents := run(ctx, patterns.StarBroadcast(n))
	pipeEvents := run(ctx, patterns.PipelineBroadcast(n))

	fmt.Println("== semantic invariants (successive activations, role lifecycle)")
	report("star trace", conform.CheckSemantics(starEvents))
	report("pipeline trace", conform.CheckSemantics(pipeEvents))

	starSpec := conform.ChannelSpec{
		Script: "star_broadcast",
		Allowed: func(from, to ids.RoleRef) bool {
			return from == ids.Role(patterns.RoleSender) && to.Name == patterns.RoleRecipient
		},
	}
	pipeSpec := conform.ChannelSpec{
		Script: "pipeline_broadcast",
		Allowed: func(from, to ids.RoleRef) bool {
			if from == ids.Role(patterns.RoleSender) {
				return to == ids.Member(patterns.RoleRecipient, 1)
			}
			return from.Name == patterns.RoleRecipient &&
				to == ids.Member(patterns.RoleRecipient, from.Index+1)
		},
	}
	fmt.Println("\n== communication specifications")
	report("star trace vs star spec", conform.CheckChannels(starEvents, starSpec))
	report("pipeline trace vs pipeline spec", conform.CheckChannels(pipeEvents, pipeSpec))

	// The cross check MUST fail: a pipeline does not implement the star's
	// communication pattern, even though both deliver the same values.
	crossSpec := starSpec
	crossSpec.Script = "pipeline_broadcast"
	cross := conform.CheckChannels(pipeEvents, crossSpec)
	fmt.Printf("\n== cross check: pipeline trace vs STAR spec (must fail)\n")
	if len(cross) == 0 {
		log.Fatal("cross check wrongly passed")
	}
	for _, v := range cross {
		fmt.Printf("   detected: %s\n", v)
	}

	fmt.Println("\n== per-performance receive counts")
	report("every recipient receives exactly once", conform.CheckReceiveCounts(starEvents, conform.ReceiveCountSpec{
		Script: "star_broadcast",
		Match:  func(r ids.RoleRef) bool { return r.Name == patterns.RoleRecipient },
		Count:  1,
	}))
}

// run executes two performances of def under a tracer and returns the
// events.
func run(ctx context.Context, def core.Definition) []trace.Event {
	var log trace.Log
	in := core.NewInstance(def, core.WithTracer(&log))
	defer in.Close()
	for round := 0; round < 2; round++ {
		var wg sync.WaitGroup
		for i := 1; i <= n; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				_, _ = in.Enroll(ctx, core.Enrollment{
					PID: ids.PID(fmt.Sprintf("P%d", i)), Role: ids.Member(patterns.RoleRecipient, i),
				})
			}()
		}
		if _, err := in.Enroll(ctx, core.Enrollment{
			PID: "T", Role: ids.Role(patterns.RoleSender), Args: []any{round},
		}); err != nil {
			panic(err)
		}
		wg.Wait()
	}
	return log.Events()
}

func report(what string, vs []conform.Violation) {
	if len(vs) == 0 {
		fmt.Printf("   %-34s OK\n", what)
		return
	}
	fmt.Printf("   %-34s %d violation(s)\n", what, len(vs))
	for _, v := range vs {
		fmt.Printf("      %s\n", v)
	}
}
