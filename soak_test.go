package script_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/scriptabs/goscript/internal/conform"
	"github.com/scriptabs/goscript/internal/core"
	"github.com/scriptabs/goscript/internal/ids"
	"github.com/scriptabs/goscript/internal/patterns"
	"github.com/scriptabs/goscript/internal/trace"
)

// TestSoakRandomWorkloads runs randomized broadcast workloads — random
// shape (star/pipeline/tree), size, fanout, round count, and enrollment
// interleavings — and validates every recorded trace against the semantic
// invariants and the shape's communication specification. This is the
// repository's failure-injection net: any lost wakeup, double fill, or
// cross-performance leak shows up as a conformance violation or a hang.
func TestSoakRandomWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test is not short")
	}
	rng := rand.New(rand.NewSource(2026))
	for trial := 0; trial < 25; trial++ {
		shape := []string{"star", "pipeline", "tree"}[rng.Intn(3)]
		n := rng.Intn(6) + 1
		fanout := rng.Intn(3) + 1
		rounds := rng.Intn(4) + 1
		t.Run(fmt.Sprintf("trial=%d_%s_n=%d", trial, shape, n), func(t *testing.T) {
			var def core.Definition
			var spec conform.ChannelSpec
			switch shape {
			case "star":
				def = patterns.StarBroadcast(n)
				spec = conform.ChannelSpec{Allowed: func(from, to ids.RoleRef) bool {
					return from == ids.Role(patterns.RoleSender) && to.Name == patterns.RoleRecipient
				}}
			case "pipeline":
				def = patterns.PipelineBroadcast(n)
				spec = conform.ChannelSpec{Allowed: func(from, to ids.RoleRef) bool {
					if from == ids.Role(patterns.RoleSender) {
						return to == ids.Member(patterns.RoleRecipient, 1)
					}
					return to == ids.Member(patterns.RoleRecipient, from.Index+1)
				}}
			case "tree":
				def = patterns.TreeBroadcast(n, fanout)
				spec = conform.ChannelSpec{Allowed: func(from, to ids.RoleRef) bool {
					if from == ids.Role(patterns.RoleSender) {
						return to == ids.Member(patterns.RoleRecipient, 1)
					}
					first := fanout*(from.Index-1) + 2
					return to.Index >= first && to.Index < first+fanout
				}}
			}

			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			var log trace.Log
			in := core.NewInstance(def, core.WithTracer(&log))
			defer in.Close()

			var wg sync.WaitGroup
			for i := 1; i <= n; i++ {
				i := i
				wg.Add(1)
				go func() {
					defer wg.Done()
					for r := 0; r < rounds; r++ {
						res, err := in.Enroll(ctx, core.Enrollment{
							PID: ids.PID(fmt.Sprintf("R%d", i)), Role: ids.Member(patterns.RoleRecipient, i),
						})
						if err != nil {
							t.Errorf("recipient %d round %d: %v", i, r, err)
							return
						}
						if res.Values[0] != res.Performance-1 {
							t.Errorf("recipient %d got %v in performance %d (cross-performance leak)",
								i, res.Values[0], res.Performance)
							return
						}
					}
				}()
			}
			for r := 0; r < rounds; r++ {
				if _, err := in.Enroll(ctx, core.Enrollment{
					PID: "T", Role: ids.Role(patterns.RoleSender), Args: []any{r},
				}); err != nil {
					t.Fatalf("sender round %d: %v", r, err)
				}
			}
			wg.Wait()

			events := log.Events()
			for _, v := range conform.CheckSemantics(events) {
				t.Errorf("semantics: %s", v)
			}
			for _, v := range conform.CheckChannels(events, spec) {
				t.Errorf("channels: %s", v)
			}
			for _, v := range conform.CheckReceiveCounts(events, conform.ReceiveCountSpec{
				Match: func(rr ids.RoleRef) bool { return rr.Name == patterns.RoleRecipient },
				Count: 1,
			}) {
				t.Errorf("receive counts: %s", v)
			}
		})
	}
}

// TestSoakPanickingBodies hammers a two-role rendezvous in which either
// body may panic while its partner is blocked mid-communication, under both
// termination modes. The runtime's contract: the panicker reports a
// *RoleError, the blocked partner unwinds with ErrRoleFinished (never
// hangs), the instance keeps serving subsequent casts, and the recorded
// trace stays conformant.
func TestSoakPanickingBodies(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test is not short")
	}
	for _, term := range []core.Termination{core.ImmediateTermination, core.DelayedTermination} {
		term := term
		name := "immediate"
		if term == core.DelayedTermination {
			name = "delayed"
		}
		t.Run(name, func(t *testing.T) {
			def := core.NewScript("panicky").
				Role("a", func(rc core.Ctx) error {
					if rc.Arg(0) == "panic" {
						panic("soak: a panics")
					}
					return rc.Send(ids.Role("b"), "v")
				}).
				Role("b", func(rc core.Ctx) error {
					if rc.Arg(0) == "panic" {
						panic("soak: b panics")
					}
					_, err := rc.Recv(ids.Role("a"))
					return err
				}).
				Initiation(core.DelayedInitiation).
				Termination(term).
				MustBuild()
			var log trace.Log
			in := core.NewInstance(def, core.WithTracer(&log))
			defer in.Close()

			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			rng := rand.New(rand.NewSource(7))
			const rounds = 60
			for r := 0; r < rounds; r++ {
				var argsA, argsB []any
				switch rng.Intn(4) {
				case 0:
					argsA = []any{"panic"}
				case 1:
					argsB = []any{"panic"}
				}
				chA := make(chan error, 1)
				go func() {
					_, err := in.Enroll(ctx, core.Enrollment{PID: "A", Role: ids.Role("a"), Args: argsA})
					chA <- err
				}()
				_, errB := in.Enroll(ctx, core.Enrollment{PID: "B", Role: ids.Role("b"), Args: argsB})
				errA := <-chA
				for _, e := range []error{errA, errB} {
					if e == nil {
						continue
					}
					var re *core.RoleError
					if !errors.As(e, &re) {
						t.Fatalf("round %d: unexpected error class %v", r, e)
					}
				}
				// A panicking partner must surface to the blocked side as
				// ErrRoleFinished (wrapped in its own RoleError), never a hang.
				if len(argsA) > 0 && errB != nil && !errors.Is(errB, core.ErrRoleFinished) {
					t.Fatalf("round %d: b err = %v, want ErrRoleFinished after a's panic", r, errB)
				}
			}
			for _, v := range conform.CheckSemantics(log.Events()) {
				t.Errorf("semantics: %s", v)
			}
		})
	}
}

// TestSoakContendedSingleRole hammers one role with many contenders and
// random cancellations, then validates the trace. Cancellation must never
// corrupt the performance sequence.
func TestSoakContendedSingleRole(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test is not short")
	}
	def := core.NewScript("slot").
		Role("only", func(rc core.Ctx) error { return nil }).
		MustBuild()
	var log trace.Log
	in := core.NewInstance(def, core.WithTracer(&log))
	defer in.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	const contenders, rounds = 8, 25
	var wg sync.WaitGroup
	for c := 0; c < contenders; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			pid := ids.PID(fmt.Sprintf("P%d", c))
			for r := 0; r < rounds; r++ {
				// A third of the attempts carry a pre-cancelled context,
				// exercising the withdrawal path under contention.
				ectx := ctx
				if (c+r)%3 == 0 {
					cc, ccancel := context.WithCancel(ctx)
					ccancel()
					ectx = cc
				}
				_, _ = in.Enroll(ectx, core.Enrollment{PID: pid, Role: ids.Role("only")})
			}
		}()
	}
	wg.Wait()
	for _, v := range conform.CheckSemantics(log.Events()) {
		t.Errorf("semantics: %s", v)
	}
}
