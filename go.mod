module github.com/scriptabs/goscript

go 1.22
